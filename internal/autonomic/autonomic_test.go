package autonomic

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func at(sec int) time.Time { return time.Unix(int64(sec), 0) }

func TestBusBoundedDropsOldest(t *testing.T) {
	b := NewBus(3)
	for i := 0; i < 5; i++ {
		b.Publish(Signal{Kind: SignalQueueDepth, Value: float64(i)})
	}
	got := b.Drain()
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	for i, s := range got {
		if want := float64(i + 2); s.Value != want {
			t.Fatalf("sig[%d].Value = %g, want %g (oldest dropped first)", i, s.Value, want)
		}
	}
	if b.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", b.Dropped())
	}
	if got := b.Drain(); len(got) != 0 {
		t.Fatalf("second Drain returned %d signals, want 0", len(got))
	}
}

func TestDriftPolicyThreshold(t *testing.T) {
	p := &DriftPolicy{Threshold: 2, SlideTo: 5, PublishAfter: true}
	if props := p.Evaluate(at(0), []Signal{{Kind: SignalDrift, Value: 1.5}}); props != nil {
		t.Fatalf("below threshold proposed %v", props)
	}
	props := p.Evaluate(at(1), []Signal{
		{Kind: SignalDrift, Value: 1.0},
		{Kind: SignalDrift, Value: 2.7},
	})
	if len(props) != 3 {
		t.Fatalf("got %d proposals, want slide+retrain+publish", len(props))
	}
	if props[0].Action.Kind != ActionSlide || props[0].Action.MaxRuns != 5 {
		t.Fatalf("first proposal = %v, want slide(max_runs=5)", props[0].Action)
	}
	if props[1].Action.Kind != ActionRetrain || props[2].Action.Kind != ActionPublish {
		t.Fatalf("order = %v,%v, want retrain,publish", props[1].Action.Kind, props[2].Action.Kind)
	}
	if !strings.Contains(props[1].Reason, "2.7") {
		t.Fatalf("reason %q should carry the worst drift score", props[1].Reason)
	}
}

func TestPredictionErrorPolicyHysteresis(t *testing.T) {
	p := &PredictionErrorPolicy{Trigger: 0.5, Clear: 0.2, Alpha: 1, MinSamples: 2}
	errSig := func(v float64) []Signal { return []Signal{{Kind: SignalPredictionError, Value: v}} }

	// First observation is past trigger but below MinSamples.
	if props := p.Evaluate(at(0), errSig(0.9)); props != nil {
		t.Fatalf("fired on first sample despite MinSamples=2: %v", props)
	}
	props := p.Evaluate(at(1), errSig(0.8))
	if len(props) != 1 || props[0].Action.Kind != ActionRetrain {
		t.Fatalf("second bad sample: got %v, want retrain", props)
	}
	// Still elevated: latched, no re-fire.
	if props := p.Evaluate(at(2), errSig(0.7)); props != nil {
		t.Fatalf("re-fired while latched: %v", props)
	}
	// Recover below Clear: re-arms but does not fire.
	if props := p.Evaluate(at(3), errSig(0.1)); props != nil {
		t.Fatalf("fired on recovery observation: %v", props)
	}
	// Error returns: fires again.
	if props := p.Evaluate(at(4), errSig(0.9)); len(props) != 1 {
		t.Fatalf("did not re-fire after clearing: %v", props)
	}
}

func TestOverloadPolicyWatermarks(t *testing.T) {
	p := &OverloadPolicy{
		HighDepth: 100, LowDepth: 10, Sustain: 2,
		TightDepth: 50, TightFloor: 7, RelaxDepth: 200, RelaxFloor: 0,
	}
	depth := func(v float64) []Signal { return []Signal{{Kind: SignalQueueDepth, Value: v}} }

	if props := p.Evaluate(at(0), depth(150)); props != nil {
		t.Fatalf("tightened after one observation, want sustain=2: %v", props)
	}
	props := p.Evaluate(at(1), depth(120))
	if len(props) != 1 || props[0].Action.Kind != ActionReshard {
		t.Fatalf("sustained overload: got %v, want reshard", props)
	}
	if props[0].Action.MaxQueueDepth != 50 || props[0].Action.MinPriority != 7 {
		t.Fatalf("tighten installed %v, want depth=50 floor=7", props[0].Action)
	}
	if !p.Tight() {
		t.Fatal("Tight() = false after tighten")
	}
	// Mid-band observation resets both counters; no flapping.
	if props := p.Evaluate(at(2), depth(50)); props != nil {
		t.Fatalf("mid-band proposed %v", props)
	}
	p.Evaluate(at(3), depth(5))
	props = p.Evaluate(at(4), depth(3))
	if len(props) != 1 || props[0].Action.MaxQueueDepth != 200 || props[0].Action.MinPriority != 0 {
		t.Fatalf("sustained drain: got %v, want relax reshard depth=200 floor=0", props)
	}
	if p.Tight() {
		t.Fatal("Tight() = true after relax")
	}
}

func TestOverloadPolicyRiseCatchesRamp(t *testing.T) {
	p := &OverloadPolicy{
		HighDepth: 1000, Rise: 20, Sustain: 2,
		TightDepth: 50, TightFloor: 5,
	}
	depth := func(v float64) []Signal { return []Signal{{Kind: SignalQueueDepth, Value: v}} }
	p.Evaluate(at(0), depth(10)) // baseline
	p.Evaluate(at(1), depth(40)) // +30: rising 1
	props := p.Evaluate(at(2), depth(70))
	if len(props) != 1 || props[0].Action.Kind != ActionReshard {
		t.Fatalf("fast ramp below HighDepth: got %v, want reshard", props)
	}
}

// policyFunc adapts a func to Policy for supervisor tests.
type policyFunc struct {
	name string
	fn   func(now time.Time, sigs []Signal) []Proposal
}

func (p policyFunc) Name() string { return p.name }
func (p policyFunc) Evaluate(now time.Time, sigs []Signal) []Proposal {
	return p.fn(now, sigs)
}

func alwaysPropose(name string, kinds ...ActionKind) Policy {
	return policyFunc{name: name, fn: func(time.Time, []Signal) []Proposal {
		out := make([]Proposal, len(kinds))
		for i, k := range kinds {
			out[i] = Proposal{Action: Action{Kind: k}, Reason: "test"}
		}
		return out
	}}
}

func TestSupervisorValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("no policies accepted")
	}
	if _, err := New(Config{Policies: []Policy{nil}}); err == nil {
		t.Fatal("nil policy accepted")
	}
	p := alwaysPropose("dup", ActionRetrain)
	if _, err := New(Config{Policies: []Policy{p, p}}); err == nil {
		t.Fatal("duplicate policy name accepted")
	}
	if _, err := New(Config{
		Policies: []Policy{p},
		Cooldown: map[ActionKind]time.Duration{ActionRetrain: -time.Second},
	}); err == nil {
		t.Fatal("negative cooldown accepted")
	}
}

func TestSupervisorCooldownSuppresses(t *testing.T) {
	retrains := 0
	s, err := New(Config{
		Policies: []Policy{alwaysPropose("p", ActionRetrain)},
		Actuators: Actuators{
			Retrain: func(string) error { retrains++; return nil },
		},
		Cooldown: map[ActionKind]time.Duration{ActionRetrain: 10 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	d1 := s.Tick(at(0))
	if len(d1) != 1 || d1[0].Outcome != OutcomeExecuted {
		t.Fatalf("first tick: %v", d1)
	}
	d2 := s.Tick(at(5))
	if len(d2) != 1 || d2[0].Outcome != OutcomeCooldown {
		t.Fatalf("inside cooldown: %v, want suppressed-but-logged", d2)
	}
	d3 := s.Tick(at(10))
	if len(d3) != 1 || d3[0].Outcome != OutcomeExecuted {
		t.Fatalf("after cooldown: %v", d3)
	}
	if retrains != 2 {
		t.Fatalf("retrains = %d, want 2", retrains)
	}
	if s.Executed(ActionRetrain) != 2 {
		t.Fatalf("Executed = %d, want 2", s.Executed(ActionRetrain))
	}
	if got := s.Outcomes(); got[OutcomeExecuted] != 2 || got[OutcomeCooldown] != 1 {
		t.Fatalf("Outcomes = %v", got)
	}
}

func TestSupervisorPublishDeferredWhileStale(t *testing.T) {
	var published, redeployed int
	fire := true
	s, err := New(Config{
		Policies: []Policy{policyFunc{name: "p", fn: func(time.Time, []Signal) []Proposal {
			if !fire {
				return nil
			}
			fire = false
			return []Proposal{{Action: Action{Kind: ActionPublish}, Reason: "drift"}}
		}}},
		Actuators: Actuators{
			Publish:  func(string) error { published++; return nil },
			Redeploy: func(string) error { redeployed++; return nil },
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	s.Signal(Signal{Kind: SignalStaleness, Value: 30, At: at(0)})
	d := s.Tick(at(0))
	if len(d) != 1 || d[0].Outcome != OutcomeDeferred {
		t.Fatalf("publish while stale: %v, want deferred", d)
	}
	if published != 0 {
		t.Fatal("publish actuator ran while registry stale")
	}
	// Still stale: nothing happens.
	s.Signal(Signal{Kind: SignalStaleness, Value: 60, At: at(10)})
	if d := s.Tick(at(10)); len(d) != 0 {
		t.Fatalf("still stale: %v, want no decisions", d)
	}
	// Registry heals: the parked publish executes.
	s.Signal(Signal{Kind: SignalStaleness, Value: 0, At: at(20)})
	d = s.Tick(at(20))
	if len(d) != 1 || d[0].Outcome != OutcomeExecuted || d[0].Action.Kind != ActionPublish {
		t.Fatalf("after heal: %v, want executed publish", d)
	}
	if published != 1 || redeployed != 0 {
		t.Fatalf("published=%d redeployed=%d, want 1,0", published, redeployed)
	}
	if !strings.Contains(d[0].Reason, "drift") {
		t.Fatalf("retried publish lost its original reason: %q", d[0].Reason)
	}
}

func TestSupervisorRedeployFallback(t *testing.T) {
	var published, redeployed int
	fire := true
	s, err := New(Config{
		Policies: []Policy{policyFunc{name: "p", fn: func(time.Time, []Signal) []Proposal {
			if !fire {
				return nil
			}
			fire = false
			return []Proposal{{Action: Action{Kind: ActionPublish}, Reason: "drift"}}
		}}},
		Actuators: Actuators{
			Publish:  func(string) error { published++; return nil },
			Redeploy: func(string) error { redeployed++; return nil },
		},
		RedeployAfter: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Signal(Signal{Kind: SignalStaleness, Value: 5, At: at(0)})
	if d := s.Tick(at(0)); len(d) != 1 || d[0].Outcome != OutcomeDeferred {
		t.Fatalf("expected deferral, got %v", d)
	}
	s.Signal(Signal{Kind: SignalStaleness, Value: 15, At: at(10)})
	if d := s.Tick(at(10)); len(d) != 0 {
		t.Fatalf("before RedeployAfter: %v, want nothing", d)
	}
	s.Signal(Signal{Kind: SignalStaleness, Value: 35, At: at(30)})
	d := s.Tick(at(30))
	if len(d) != 1 || d[0].Action.Kind != ActionRedeploy || d[0].Outcome != OutcomeExecuted {
		t.Fatalf("at RedeployAfter: %v, want executed redeploy", d)
	}
	if published != 0 || redeployed != 1 {
		t.Fatalf("published=%d redeployed=%d, want 0,1", published, redeployed)
	}
	if s.RegistryStale() != true {
		t.Fatal("RegistryStale lost track of staleness")
	}
}

func TestSupervisorActuatorFailureLogged(t *testing.T) {
	s, err := New(Config{
		Policies: []Policy{alwaysPropose("p", ActionRetrain)},
		Actuators: Actuators{
			Retrain: func(string) error { return errors.New("pipeline busy") },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	d := s.Tick(at(0))
	if len(d) != 1 || d[0].Outcome != OutcomeFailed || d[0].Err != "pipeline busy" {
		t.Fatalf("failed actuator: %+v", d)
	}
	// A failure does not start the cooldown: the next tick tries again.
	s2, _ := New(Config{
		Policies:        []Policy{alwaysPropose("p", ActionRetrain)},
		Actuators:       Actuators{Retrain: func(string) error { return errors.New("x") }},
		DefaultCooldown: time.Hour,
	})
	s2.Tick(at(0))
	d = s2.Tick(at(1))
	if len(d) != 1 || d[0].Outcome != OutcomeFailed {
		t.Fatalf("failure should not arm cooldown: %v", d)
	}
}

func TestSupervisorNoActuator(t *testing.T) {
	s, err := New(Config{
		Policies: []Policy{alwaysPropose("p", ActionRetrain, ActionSlide, ActionReshard)},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range s.Tick(at(0)) {
		if d.Outcome != OutcomeNoActuator {
			t.Fatalf("unwired arm %s: outcome %s, want no_actuator", d.Action.Kind, d.Outcome)
		}
	}
}

func TestSupervisorDecisionSequenceAndHook(t *testing.T) {
	var seen []Decision
	s, err := New(Config{
		Policies: []Policy{
			alwaysPropose("a", ActionRetrain),
			alwaysPropose("b", ActionPublish),
		},
		Actuators: Actuators{
			Retrain: func(string) error { return nil },
			Publish: func(string) error { return nil },
		},
		OnDecision: func(d Decision) { seen = append(seen, d) },
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Tick(at(0))
	s.Tick(at(1))
	if len(seen) != 4 {
		t.Fatalf("hook saw %d decisions, want 4", len(seen))
	}
	for i, d := range seen {
		if d.Seq != i+1 {
			t.Fatalf("decision %d has seq %d, want gap-free %d", i, d.Seq, i+1)
		}
	}
	if seen[0].Policy != "a" || seen[1].Policy != "b" {
		t.Fatalf("policies ran out of order: %s, %s", seen[0].Policy, seen[1].Policy)
	}
	if s.Decisions() != 4 {
		t.Fatalf("Decisions = %d, want 4", s.Decisions())
	}
	// Stable log rendering (fingerprint material).
	want := "#1 a retrain -> executed (test)"
	if got := seen[0].String(); got != want {
		t.Fatalf("Decision.String() = %q, want %q", got, want)
	}
}

func TestActionString(t *testing.T) {
	cases := []struct {
		a    Action
		want string
	}{
		{Action{Kind: ActionRetrain}, "retrain"},
		{Action{Kind: ActionSlide, MaxRuns: 4}, "slide(max_runs=4)"},
		{Action{Kind: ActionReshard, MaxQueueDepth: 64, MinPriority: 5}, "reshard(depth=64,floor=5)"},
		{Action{Kind: ActionPublish}, "publish"},
	}
	for _, c := range cases {
		if got := c.a.String(); got != c.want {
			t.Fatalf("String(%v) = %q, want %q", c.a.Kind, got, c.want)
		}
	}
}

func TestSupervisorLaterDeferralReplacesEarlier(t *testing.T) {
	var reasons []string
	n := 0
	s, err := New(Config{
		Policies: []Policy{policyFunc{name: "p", fn: func(time.Time, []Signal) []Proposal {
			n++
			if n <= 2 {
				return []Proposal{{Action: Action{Kind: ActionPublish}, Reason: fmt.Sprintf("round %d", n)}}
			}
			return nil
		}}},
		Actuators: Actuators{
			Publish: func(reason string) error { reasons = append(reasons, reason); return nil },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Signal(Signal{Kind: SignalStaleness, Value: 1})
	s.Tick(at(0))
	s.Tick(at(1)) // second deferral replaces the first
	s.Signal(Signal{Kind: SignalStaleness, Value: 0})
	s.Tick(at(2))
	if len(reasons) != 1 || !strings.Contains(reasons[0], "round 2") {
		t.Fatalf("executed publishes %v, want exactly the latest deferral", reasons)
	}
}

// A cooldown-suppressed relax must not latch the overload policy's
// watermark state: the supervisor reports the outcome back and the
// policy re-proposes the relax once the drained condition re-sustains.
func TestOverloadPolicyRelaxRetriesAfterCooldown(t *testing.T) {
	pol := &OverloadPolicy{HighDepth: 10, LowDepth: 2, Sustain: 2, TightDepth: 8, TightFloor: 2, RelaxDepth: 64}
	var floors []int
	s, err := New(Config{
		Policies:        []Policy{pol},
		DefaultCooldown: 40 * time.Second,
		Actuators: Actuators{
			Reshard: func(depth, floor int, reason string) error { floors = append(floors, floor); return nil },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	depth := func(sec int, v float64) {
		s.Signal(Signal{Kind: SignalQueueDepth, Value: v})
		s.Tick(at(sec))
	}
	depth(0, 15)
	depth(5, 15) // tighten executes at t=5
	if !pol.Tight() {
		t.Fatal("policy not tight after sustained overload")
	}
	depth(10, 0)
	depth(15, 0) // relax proposed at t=15, 10s after tighten -> cooldown
	if pol.Tight() != true {
		t.Fatal("suppressed relax must leave the policy tight (state rolled back)")
	}
	depth(20, 0)
	depth(25, 0) // re-sustained, still inside cooldown
	depth(50, 0)
	depth(55, 0) // re-sustained past the cooldown: relax executes
	if pol.Tight() {
		t.Fatal("policy still tight after executed relax")
	}
	if len(floors) != 2 || floors[0] != 2 || floors[1] != 0 {
		t.Fatalf("executed reshards %v, want [2 0] (tighten then relax)", floors)
	}
	if got := s.Executed(ActionReshard); got != 2 {
		t.Fatalf("Executed(reshard) = %d, want 2", got)
	}
}

// A cooldown-suppressed retrain must release the prediction-error
// policy's fired latch so the retrain is retried, while an executed
// retrain keeps the latch until the EWMA recovers below Clear.
func TestPredictionErrorPolicyRetriesSuppressedRetrain(t *testing.T) {
	pol := &PredictionErrorPolicy{Trigger: 1, Clear: 0.3, Alpha: 1, MinSamples: 1}
	retrains := 0
	s, err := New(Config{
		Policies:        []Policy{pol},
		DefaultCooldown: 40 * time.Second,
		Actuators: Actuators{
			Retrain: func(reason string) error { retrains++; return nil },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	errSig := func(sec int, v float64) {
		s.Signal(Signal{Kind: SignalPredictionError, Value: v})
		s.Tick(at(sec))
	}
	errSig(0, 2) // fires, executes
	if retrains != 1 {
		t.Fatalf("retrains = %d, want 1", retrains)
	}
	// Executed retrain latches: persistent high error does not re-fire.
	errSig(5, 2)
	if retrains != 1 {
		t.Fatalf("latched policy retrained again: %d", retrains)
	}
	// Recover below Clear, then cross the trigger again inside the
	// cooldown: proposal suppressed, latch released, retried after.
	errSig(10, 0.1)
	errSig(20, 2) // cooldown (20s < 40s), latch released
	errSig(45, 2) // past cooldown: executes
	if retrains != 2 {
		t.Fatalf("retrains = %d, want 2 (suppressed proposal retried)", retrains)
	}
}

// SkewPolicy: sustained shard-skew observations propose a rebalance,
// a single bursty interval does not, and the counter re-arms after
// each proposal so a skew the actuator failed to drain is proposed
// again only after re-sustaining.
func TestSkewPolicySustain(t *testing.T) {
	p := &SkewPolicy{High: 1.5, Sustain: 2}
	skew := func(v float64) []Signal { return []Signal{{Kind: SignalShardSkew, Value: v}} }

	if props := p.Evaluate(at(0), skew(3)); props != nil {
		t.Fatalf("fired after one observation, want sustain=2: %v", props)
	}
	props := p.Evaluate(at(1), skew(2.5))
	if len(props) != 1 || props[0].Action.Kind != ActionRebalance {
		t.Fatalf("sustained skew: got %v, want rebalance", props)
	}
	if !strings.Contains(props[0].Reason, "2.5") {
		t.Fatalf("reason %q should carry the observed skew", props[0].Reason)
	}
	// Balanced interval resets the counter.
	p.Evaluate(at(2), skew(3))
	if props := p.Evaluate(at(3), skew(1.1)); props != nil {
		t.Fatalf("balanced observation proposed %v", props)
	}
	if props := p.Evaluate(at(4), skew(3)); props != nil {
		t.Fatalf("fired without re-sustaining: %v", props)
	}
	if props := p.Evaluate(at(5), skew(3)); len(props) != 1 {
		t.Fatalf("did not re-fire after re-sustaining: %v", props)
	}
}

// The rebalance arm executes through the supervisor like any other
// parameterless actuator, with cooldown suppression and the
// no-actuator fallback.
func TestSupervisorRebalanceActuator(t *testing.T) {
	rebalances := 0
	s, err := New(Config{
		Policies:        []Policy{alwaysPropose("skewish", ActionRebalance)},
		DefaultCooldown: 30 * time.Second,
		Actuators: Actuators{
			Rebalance: func(reason string) error { rebalances++; return nil },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ds := s.Tick(at(0))
	if len(ds) != 1 || ds[0].Outcome != OutcomeExecuted {
		t.Fatalf("first tick decisions %v, want one executed rebalance", ds)
	}
	if ds = s.Tick(at(10)); len(ds) != 1 || ds[0].Outcome != OutcomeCooldown {
		t.Fatalf("inside cooldown got %v, want suppressed", ds)
	}
	if ds = s.Tick(at(40)); len(ds) != 1 || ds[0].Outcome != OutcomeExecuted {
		t.Fatalf("past cooldown got %v, want executed", ds)
	}
	if rebalances != 2 {
		t.Fatalf("rebalances = %d, want 2", rebalances)
	}
	if s.Executed(ActionRebalance) != 2 {
		t.Fatalf("Executed(rebalance) = %d, want 2", s.Executed(ActionRebalance))
	}

	bare, err := New(Config{Policies: []Policy{alwaysPropose("skewish", ActionRebalance)}})
	if err != nil {
		t.Fatal(err)
	}
	if ds := bare.Tick(at(0)); len(ds) != 1 || ds[0].Outcome != OutcomeNoActuator {
		t.Fatalf("unwired arm got %v, want no_actuator", ds)
	}
}
