package des

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	var s Simulator
	var order []int
	s.Schedule(3, func() { order = append(order, 3) })
	s.Schedule(1, func() { order = append(order, 1) })
	s.Schedule(2, func() { order = append(order, 2) })
	if err := s.RunUntilEmpty(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 3 {
		t.Fatalf("Now = %v, want 3", s.Now())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	var s Simulator
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(5, func() { order = append(order, i) })
	}
	if err := s.RunUntilEmpty(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events fired out of scheduling order: %v", order)
		}
	}
}

func TestHorizon(t *testing.T) {
	var s Simulator
	fired := 0
	s.Schedule(1, func() { fired++ })
	s.Schedule(10, func() { fired++ })
	if err := s.Run(5); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if s.Now() != 5 {
		t.Fatalf("Now = %v, want 5", s.Now())
	}
	// Event at exactly the horizon must not fire.
	var s2 Simulator
	s2.Schedule(5, func() { fired = 100 })
	if err := s2.Run(5); err != nil {
		t.Fatal(err)
	}
	if fired == 100 {
		t.Fatal("event at horizon fired")
	}
	// Continue: the event fires on the next Run.
	if err := s2.Run(6); err != nil {
		t.Fatal(err)
	}
	if fired != 100 {
		t.Fatal("event did not fire after horizon advanced")
	}
}

func TestClockAdvancesToHorizonWhenEmpty(t *testing.T) {
	var s Simulator
	if err := s.Run(42); err != nil {
		t.Fatal(err)
	}
	if s.Now() != 42 {
		t.Fatalf("Now = %v, want 42", s.Now())
	}
}

func TestScheduleInsideHandler(t *testing.T) {
	var s Simulator
	var times []float64
	s.Schedule(1, func() {
		times = append(times, s.Now())
		s.Schedule(2, func() { times = append(times, s.Now()) })
	})
	if err := s.RunUntilEmpty(); err != nil {
		t.Fatal(err)
	}
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Fatalf("times = %v", times)
	}
}

func TestCancel(t *testing.T) {
	var s Simulator
	fired := false
	e := s.Schedule(1, func() { fired = true })
	s.Cancel(e)
	if !e.Canceled() {
		t.Fatal("event not marked canceled")
	}
	if err := s.RunUntilEmpty(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("canceled event fired")
	}
	s.Cancel(e) // double cancel is a no-op
	s.Cancel(nil)
}

func TestPendingSkipsCanceled(t *testing.T) {
	var s Simulator
	e := s.Schedule(1, func() {})
	s.Schedule(2, func() {})
	s.Cancel(e)
	if got := s.Pending(); got != 1 {
		t.Fatalf("Pending = %d, want 1", got)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	var s Simulator
	s.Schedule(5, func() {})
	if err := s.Run(6); err != nil {
		t.Fatal(err)
	}
	fired := false
	s.Schedule(-3, func() { fired = true })
	if err := s.Run(7); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("negative-delay event did not fire")
	}
	if s.Now() != 7 {
		t.Fatalf("Now = %v", s.Now())
	}
}

func TestNaNDelayClamped(t *testing.T) {
	var s Simulator
	fired := false
	s.Schedule(math.NaN(), func() { fired = true })
	if err := s.Run(1); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("NaN-delay event did not fire at now")
	}
}

func TestStop(t *testing.T) {
	var s Simulator
	count := 0
	s.Schedule(1, func() { count++; s.Stop() })
	s.Schedule(2, func() { count++ })
	if err := s.RunUntilEmpty(); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("count = %d, want 1 (Stop ignored)", count)
	}
	// Resume: remaining event still queued.
	if err := s.RunUntilEmpty(); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("count after resume = %d, want 2", count)
	}
}

func TestReentrantRunRejected(t *testing.T) {
	var s Simulator
	var innerErr error
	s.Schedule(1, func() { innerErr = s.Run(10) })
	if err := s.RunUntilEmpty(); err != nil {
		t.Fatal(err)
	}
	if innerErr != ErrReentrantRun {
		t.Fatalf("inner Run error = %v, want ErrReentrantRun", innerErr)
	}
}

func TestEvery(t *testing.T) {
	var s Simulator
	var ticks []float64
	stop := s.Every(1.5, nil, func() { ticks = append(ticks, s.Now()) })
	if err := s.Run(5); err != nil {
		t.Fatal(err)
	}
	if len(ticks) != 3 || ticks[0] != 1.5 || ticks[1] != 3 || ticks[2] != 4.5 {
		t.Fatalf("ticks = %v", ticks)
	}
	stop()
	if err := s.Run(20); err != nil {
		t.Fatal(err)
	}
	if len(ticks) != 3 {
		t.Fatalf("ticks after stop = %v", ticks)
	}
}

func TestEveryWithJitter(t *testing.T) {
	var s Simulator
	var ticks []float64
	// Constant +0.5 jitter: ticks at 2.0, 4.0, ...
	s.Every(1.5, func(i int) float64 { return 0.5 }, func() { ticks = append(ticks, s.Now()) })
	if err := s.Run(5); err != nil {
		t.Fatal(err)
	}
	if len(ticks) != 2 || ticks[0] != 2 || ticks[1] != 4 {
		t.Fatalf("jittered ticks = %v", ticks)
	}
}

func TestEveryNegativeJitterClamped(t *testing.T) {
	var s Simulator
	n := 0
	s.Every(1, func(i int) float64 { return -100 }, func() {
		n++
		if n > 5 {
			s.Stop()
		}
	})
	if err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	if n < 5 {
		t.Fatalf("clamped jitter produced only %d ticks", n)
	}
}

func TestEveryPanicsOnBadInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Every(0) did not panic")
		}
	}()
	var s Simulator
	s.Every(0, nil, func() {})
}

// Property: with arbitrary schedule delays, events fire in non-decreasing
// time order and the clock never goes backwards.
func TestMonotoneClockProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		var s Simulator
		var fireTimes []float64
		for _, d := range delays {
			delay := float64(d) / 100
			s.Schedule(delay, func() { fireTimes = append(fireTimes, s.Now()) })
		}
		if err := s.RunUntilEmpty(); err != nil {
			return false
		}
		prev := math.Inf(-1)
		for _, ft := range fireTimes {
			if ft < prev {
				return false
			}
			prev = ft
		}
		return len(fireTimes) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var s Simulator
		for j := 0; j < 1000; j++ {
			s.Schedule(float64(j%97), func() {})
		}
		if err := s.RunUntilEmpty(); err != nil {
			b.Fatal(err)
		}
	}
}
