// Package des implements a small discrete-event simulation engine with a
// virtual clock. The whole F2PM test-bed (the VM resource model, the
// TPC-W browser fleet, the anomaly injectors, and the feature monitor)
// runs on this engine, which is what lets the reproduction generate the
// paper's "one week of continuous execution" in a few wall-clock seconds,
// deterministically.
//
// Events scheduled for the same virtual time fire in scheduling order
// (FIFO tie-break by sequence number), so simulations are reproducible
// regardless of map iteration or goroutine scheduling: the engine is
// strictly single-threaded.
package des

import (
	"container/heap"
	"errors"
	"math"
)

// ErrReentrantRun is returned when Run is called from inside an event
// handler.
var ErrReentrantRun = errors.New("des: Run called re-entrantly from an event handler")

// Event is a scheduled callback. The zero value is inert.
type Event struct {
	time     float64
	seq      uint64
	fn       func()
	index    int // heap index, -1 when not queued
	canceled bool
}

// Time returns the virtual time the event is scheduled for.
func (e *Event) Time() float64 { return e.time }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// eventQueue is a min-heap ordered by (time, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Simulator owns the virtual clock and the pending event queue.
// The zero value is ready to use at time 0.
type Simulator struct {
	now     float64
	seq     uint64
	queue   eventQueue
	running bool
	stopped bool
}

// Now returns the current virtual time in seconds.
func (s *Simulator) Now() float64 { return s.now }

// Pending returns the number of queued (non-canceled) events.
func (s *Simulator) Pending() int {
	n := 0
	for _, e := range s.queue {
		if !e.canceled {
			n++
		}
	}
	return n
}

// Schedule queues fn to run after delay seconds of virtual time. Negative
// delays are clamped to zero (the event fires "now", after already-queued
// same-time events). It returns the event for cancellation.
func (s *Simulator) Schedule(delay float64, fn func()) *Event {
	if delay < 0 || math.IsNaN(delay) {
		delay = 0
	}
	return s.ScheduleAt(s.now+delay, fn)
}

// ScheduleAt queues fn at absolute virtual time t (clamped to now).
func (s *Simulator) ScheduleAt(t float64, fn func()) *Event {
	if t < s.now || math.IsNaN(t) {
		t = s.now
	}
	e := &Event{time: t, seq: s.seq, fn: fn, index: -1}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// Cancel removes the event from the queue. Canceling an already-fired or
// already-canceled event is a no-op.
func (s *Simulator) Cancel(e *Event) {
	if e == nil || e.canceled {
		return
	}
	e.canceled = true
	// The event stays in the heap and is skipped when popped; this keeps
	// Cancel O(1) amortized, which matters for the browser fleet's
	// timeout-heavy workload.
}

// Stop makes Run return after the current event handler completes.
func (s *Simulator) Stop() { s.stopped = true }

// Run processes events in time order until the queue empties, Stop is
// called, or the clock would pass until (exclusive). Events scheduled
// exactly at until do not fire; the clock is left at until if the horizon
// was hit, else at the last fired event time.
func (s *Simulator) Run(until float64) error {
	if s.running {
		return ErrReentrantRun
	}
	s.running = true
	s.stopped = false
	defer func() { s.running = false }()
	for len(s.queue) > 0 && !s.stopped {
		e := s.queue[0]
		if e.canceled {
			heap.Pop(&s.queue)
			continue
		}
		if e.time >= until {
			s.now = until
			return nil
		}
		heap.Pop(&s.queue)
		s.now = e.time
		e.fn()
	}
	if !s.stopped && s.now < until && len(s.queue) == 0 && !math.IsInf(until, 1) {
		// Queue drained before a finite horizon: advance the clock so
		// that back-to-back Run calls observe monotone time.
		s.now = until
	}
	return nil
}

// RunUntilEmpty processes all remaining events with no time horizon.
func (s *Simulator) RunUntilEmpty() error { return s.Run(math.Inf(1)) }

// Every schedules fn to run every interval seconds of virtual time,
// starting after the first interval. The returned stop function cancels
// the recurrence. The actual interval of each tick can be perturbed by
// jitter (may be nil), which receives the tick index and returns an
// additive delay — the feature monitor uses this to model the
// scheduling-induced skew the paper discusses in §III-B.
func (s *Simulator) Every(interval float64, jitter func(i int) float64, fn func()) (stop func()) {
	if interval <= 0 {
		panic("des: Every with non-positive interval")
	}
	stopped := false
	var tick func()
	i := 0
	var pending *Event
	tick = func() {
		if stopped {
			return
		}
		fn()
		i++
		d := interval
		if jitter != nil {
			d += jitter(i)
			if d < 0 {
				d = 0
			}
		}
		pending = s.Schedule(d, tick)
	}
	d := interval
	if jitter != nil {
		d += jitter(0)
		if d < 0 {
			d = 0
		}
	}
	pending = s.Schedule(d, tick)
	return func() {
		stopped = true
		s.Cancel(pending)
	}
}
