package aggregate

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/randx"
	"repro/internal/trace"
)

func TestLiveMatchesBatch(t *testing.T) {
	// Feeding a run's datapoints through the live aggregator must
	// reproduce the batch Aggregate rows exactly.
	run := linearRun(1.3, 47, 70)
	h := &trace.History{Runs: []trace.Run{run}}
	cfg := DefaultConfig()
	batch, err := Aggregate(h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	live, err := NewLiveAggregator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var rows [][]float64
	var tgens []float64
	for _, d := range run.Datapoints {
		if row, tg, ok := live.Push(d); ok {
			rows = append(rows, row)
			tgens = append(tgens, tg)
		}
	}
	if row, tg, ok := live.Flush(); ok {
		rows = append(rows, row)
		tgens = append(tgens, tg)
	}
	if len(rows) != batch.NumRows() {
		t.Fatalf("live rows = %d, batch = %d", len(rows), batch.NumRows())
	}
	for i := range rows {
		if math.Abs(tgens[i]-batch.AggTgen[i]) > 1e-9 {
			t.Fatalf("row %d tgen %v vs %v", i, tgens[i], batch.AggTgen[i])
		}
		for j := range rows[i] {
			if math.Abs(rows[i][j]-batch.X[i][j]) > 1e-9 {
				t.Fatalf("row %d col %d (%s): live %v batch %v", i, j, batch.ColNames[j], rows[i][j], batch.X[i][j])
			}
		}
	}
}

func TestLiveMatchesBatchProperty(t *testing.T) {
	src := randx.New(7)
	f := func(seed uint16) bool {
		local := src.Fork(uint64(seed))
		var run trace.Run
		tm := 0.0
		n := 20 + local.Intn(60)
		for i := 0; i < n; i++ {
			tm += local.Uniform(0.5, 4)
			var d trace.Datapoint
			d.Tgen = tm
			for f := range d.Features {
				d.Features[f] = local.Uniform(0, 1e6)
			}
			run.Datapoints = append(run.Datapoints, d)
		}
		run.Failed = true
		run.FailTime = tm + 1
		h := &trace.History{Runs: []trace.Run{run}}
		cfg := Config{WindowSec: 9, IncludeSlopes: true, IncludeIntergen: true}
		batch, err := Aggregate(h, cfg)
		if err != nil {
			return false
		}
		live, err := NewLiveAggregator(cfg)
		if err != nil {
			return false
		}
		var rows [][]float64
		for _, d := range run.Datapoints {
			if row, _, ok := live.Push(d); ok {
				rows = append(rows, row)
			}
		}
		if row, _, ok := live.Flush(); ok {
			rows = append(rows, row)
		}
		if len(rows) != batch.NumRows() {
			return false
		}
		for i := range rows {
			for j := range rows[i] {
				if math.Abs(rows[i][j]-batch.X[i][j]) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLiveResetOnTimeRegression(t *testing.T) {
	live, err := NewLiveAggregator(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	d := trace.Datapoint{Tgen: 100}
	if _, _, ok := live.Push(d); ok {
		t.Fatal("first push emitted a row")
	}
	// Time goes backwards: system restarted.
	d2 := trace.Datapoint{Tgen: 1}
	if _, _, ok := live.Push(d2); ok {
		t.Fatal("restart push emitted a row")
	}
	// After restart the aggregator behaves like a fresh one: pushing a
	// point in the next window emits exactly one row with one member.
	d3 := trace.Datapoint{Tgen: 1 + DefaultConfig().WindowSec*2}
	row, tgen, ok := live.Push(d3)
	if !ok {
		t.Fatal("no row emitted after window advance")
	}
	if tgen != 1 {
		t.Fatalf("emitted tgen = %v, want 1 (the post-restart point)", tgen)
	}
	if len(row) != 30 {
		t.Fatalf("row width %d", len(row))
	}
}

func TestLiveColNames(t *testing.T) {
	live, err := NewLiveAggregator(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	names := live.ColNames()
	if len(names) != 30 || names[0] != "n_threads" {
		t.Fatalf("names = %v", names)
	}
	// Mutating the returned slice must not affect the aggregator.
	names[0] = "corrupted"
	if live.ColNames()[0] != "n_threads" {
		t.Fatal("ColNames exposes internal state")
	}
}

func TestLiveFlushEmpty(t *testing.T) {
	live, err := NewLiveAggregator(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := live.Flush(); ok {
		t.Fatal("empty flush emitted a row")
	}
}

func TestLiveRejectsBadConfig(t *testing.T) {
	if _, err := NewLiveAggregator(Config{WindowSec: 0}); err == nil {
		t.Fatal("bad config accepted")
	}
}
