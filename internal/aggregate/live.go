package aggregate

import (
	"repro/internal/trace"
)

// LiveAggregator builds aggregated feature rows incrementally from a
// stream of datapoints, producing exactly the same rows (same column
// layout, same means/slopes/inter-generation metrics) as the batch
// Aggregate function. It is the deployment-side counterpart of the
// training pipeline: feed it the FMC's datapoints and hand each emitted
// row to a trained model to predict the live RTTF.
type LiveAggregator struct {
	cfg    Config
	names  []string
	window int // current window index, -1 before the first datapoint
	buf    []trace.Datapoint
	gaps   []float64
	prevT  float64
	first  bool
}

// NewLiveAggregator validates cfg and returns an empty aggregator.
func NewLiveAggregator(cfg Config) (*LiveAggregator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &LiveAggregator{cfg: cfg, names: buildColNames(cfg), window: -1, first: true}, nil
}

// ColNames returns the emitted column layout.
func (a *LiveAggregator) ColNames() []string {
	return append([]string(nil), a.names...)
}

// Reset clears all buffered state (call on system restart).
func (a *LiveAggregator) Reset() {
	a.window = -1
	a.buf = a.buf[:0]
	a.gaps = a.gaps[:0]
	a.prevT = 0
	a.first = true
}

// Push adds one datapoint. When d starts a new time window, the
// completed previous window is emitted as a feature row (row, tgen,
// true); otherwise ok is false. tgen is the aggregated timestamp of the
// emitted row. Out-of-order datapoints (Tgen going backwards) are
// treated as a restart.
func (a *LiveAggregator) Push(d trace.Datapoint) (row []float64, tgen float64, ok bool) {
	if !a.first && d.Tgen < a.prevT {
		a.Reset()
	}
	w := int(d.Tgen / a.cfg.WindowSec)
	if a.window >= 0 && w != a.window && len(a.buf) > 0 {
		row, tgen = a.emit()
		ok = true
	}
	if a.window < 0 || w != a.window {
		a.window = w
		a.buf = a.buf[:0]
		a.gaps = a.gaps[:0]
	}
	gap := d.Tgen
	if !a.first {
		gap = d.Tgen - a.prevT
	}
	a.buf = append(a.buf, d)
	a.gaps = append(a.gaps, gap)
	a.prevT = d.Tgen
	a.first = false
	return row, tgen, ok
}

// Flush emits the current (incomplete) window if it has any datapoints.
func (a *LiveAggregator) Flush() (row []float64, tgen float64, ok bool) {
	if len(a.buf) == 0 {
		return nil, 0, false
	}
	row, tgen = a.emit()
	a.buf = a.buf[:0]
	a.gaps = a.gaps[:0]
	return row, tgen, true
}

// emit computes the aggregated row for the buffered window, using the
// same formulas as aggregateRun.
func (a *LiveAggregator) emit() (row []float64, tgen float64) {
	n := len(a.buf)
	fn := float64(n)
	row = make([]float64, len(a.names))
	col := 0
	for f := 0; f < trace.NumFeatures; f++ {
		var s float64
		for i := 0; i < n; i++ {
			s += a.buf[i].Features[f]
		}
		row[col+f] = s / fn
	}
	col += trace.NumFeatures
	var tsum float64
	for i := 0; i < n; i++ {
		tsum += a.buf[i].Tgen
	}
	tgen = tsum / fn
	if a.cfg.IncludeIntergen {
		var s float64
		for _, g := range a.gaps {
			s += g
		}
		row[col] = s / fn
		col++
	}
	if a.cfg.IncludeSlopes {
		for f := 0; f < trace.NumFeatures; f++ {
			row[col+f] = (a.buf[n-1].Features[f] - a.buf[0].Features[f]) / fn
		}
		col += trace.NumFeatures
		if a.cfg.IncludeIntergen {
			row[col] = (a.gaps[n-1] - a.gaps[0]) / fn
		}
	}
	return row, tgen
}
