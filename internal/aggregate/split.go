package aggregate

import (
	"fmt"

	"repro/internal/randx"
)

// SplitMode selects how the train/validation split is performed.
type SplitMode int

const (
	// SplitByRun holds out entire runs for validation, preventing
	// leakage between near-identical neighbouring windows of one run.
	// This is the default for the experiments.
	SplitByRun SplitMode = iota
	// SplitByRow holds out individual aggregated datapoints uniformly,
	// the way WEKA's percentage split does.
	SplitByRow
)

// Split partitions the dataset into training and validation subsets.
// valFrac is the fraction of data (runs or rows, depending on mode) held
// out for validation. The split is deterministic given the seed.
func Split(d *Dataset, mode SplitMode, valFrac float64, seed uint64) (train, val *Dataset, err error) {
	if valFrac <= 0 || valFrac >= 1 {
		return nil, nil, fmt.Errorf("aggregate: valFrac must be in (0,1), got %v", valFrac)
	}
	if d.NumRows() == 0 {
		return nil, nil, ErrNoData
	}
	rng := randx.New(seed)
	inVal := make([]bool, d.NumRows())
	switch mode {
	case SplitByRun:
		// Collect distinct runs in first-appearance order.
		var runs []int
		seen := map[int]bool{}
		for _, r := range d.Run {
			if !seen[r] {
				seen[r] = true
				runs = append(runs, r)
			}
		}
		nVal := int(valFrac * float64(len(runs)))
		if nVal < 1 {
			nVal = 1
		}
		if nVal >= len(runs) {
			return nil, nil, fmt.Errorf("aggregate: %d runs cannot support valFrac %v", len(runs), valFrac)
		}
		perm := rng.Perm(len(runs))
		valRuns := map[int]bool{}
		for _, pi := range perm[:nVal] {
			valRuns[runs[pi]] = true
		}
		for i, r := range d.Run {
			inVal[i] = valRuns[r]
		}
	case SplitByRow:
		nVal := int(valFrac * float64(d.NumRows()))
		if nVal < 1 {
			nVal = 1
		}
		if nVal >= d.NumRows() {
			return nil, nil, fmt.Errorf("aggregate: %d rows cannot support valFrac %v", d.NumRows(), valFrac)
		}
		perm := rng.Perm(d.NumRows())
		for _, pi := range perm[:nVal] {
			inVal[pi] = true
		}
	default:
		return nil, nil, fmt.Errorf("aggregate: unknown split mode %d", mode)
	}

	train = subset(d, inVal, false)
	val = subset(d, inVal, true)
	if train.NumRows() == 0 || val.NumRows() == 0 {
		return nil, nil, fmt.Errorf("aggregate: degenerate split (train=%d val=%d rows)", train.NumRows(), val.NumRows())
	}
	return train, val, nil
}

func subset(d *Dataset, mask []bool, keep bool) *Dataset {
	out := &Dataset{ColNames: d.ColNames}
	for i := range d.X {
		if mask[i] == keep {
			out.X = append(out.X, d.X[i])
			out.RTTF = append(out.RTTF, d.RTTF[i])
			out.Run = append(out.Run, d.Run[i])
			out.AggTgen = append(out.AggTgen, d.AggTgen[i])
		}
	}
	return out
}

// DropUnlabeled returns a dataset containing only rows with finite RTTF.
func DropUnlabeled(d *Dataset) *Dataset {
	out := &Dataset{ColNames: d.ColNames}
	for i := range d.X {
		if !isNaN(d.RTTF[i]) {
			out.X = append(out.X, d.X[i])
			out.RTTF = append(out.RTTF, d.RTTF[i])
			out.Run = append(out.Run, d.Run[i])
			out.AggTgen = append(out.AggTgen, d.AggTgen[i])
		}
	}
	return out
}

func isNaN(f float64) bool { return f != f }
