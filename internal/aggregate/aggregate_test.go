package aggregate

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/randx"
	"repro/internal/trace"
)

// linearRun builds a run whose features grow linearly with time so
// aggregated means and slopes are analytically checkable.
func linearRun(interval float64, n int, failAt float64) trace.Run {
	var run trace.Run
	for i := 0; i < n; i++ {
		var d trace.Datapoint
		d.Tgen = float64(i) * interval
		for f := 0; f < trace.NumFeatures; f++ {
			d.Features[f] = float64(f+1) * d.Tgen // feature f has slope (f+1) per second
		}
		run.Datapoints = append(run.Datapoints, d)
	}
	run.Failed = true
	run.FailTime = failAt
	return run
}

func TestConfigValidate(t *testing.T) {
	c := DefaultConfig()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	c.WindowSec = 0
	if err := c.Validate(); err == nil {
		t.Fatal("zero window accepted")
	}
}

func TestColumnLayoutFull(t *testing.T) {
	h := &trace.History{Runs: []trace.Run{linearRun(1.5, 40, 60)}}
	ds, err := Aggregate(h, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 14 raw + intergen + 14 slopes + intergen slope = 30 columns,
	// matching the paper's Figure 4 ceiling.
	if ds.NumCols() != 30 {
		t.Fatalf("cols = %d, want 30", ds.NumCols())
	}
	if ds.ColIndex("mem_used") < 0 || ds.ColIndex("mem_used_slope") < 0 {
		t.Fatal("missing raw/slope columns")
	}
	if ds.ColIndex(IntergenName) < 0 || ds.ColIndex(IntergenName+SlopeSuffix) < 0 {
		t.Fatal("missing intergen columns")
	}
	if ds.ColIndex("nonexistent") != -1 {
		t.Fatal("ColIndex found a nonexistent column")
	}
}

func TestColumnLayoutMinimal(t *testing.T) {
	h := &trace.History{Runs: []trace.Run{linearRun(1.5, 40, 60)}}
	cfg := Config{WindowSec: 10}
	ds, err := Aggregate(h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumCols() != trace.NumFeatures {
		t.Fatalf("cols = %d, want %d", ds.NumCols(), trace.NumFeatures)
	}
}

func TestWindowMeans(t *testing.T) {
	// Datapoints at t = 0, 1, 2, ..., 9 with window 5: two windows,
	// members {0..4} and {5..9}. Feature f value = (f+1)*t.
	h := &trace.History{Runs: []trace.Run{linearRun(1, 10, 20)}}
	ds, err := Aggregate(h, Config{WindowSec: 5})
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", ds.NumRows())
	}
	// Window 1 mean of t = 2, so feature f mean = (f+1)*2.
	for f := 0; f < trace.NumFeatures; f++ {
		want := float64(f+1) * 2
		if got := ds.X[0][f]; math.Abs(got-want) > 1e-9 {
			t.Fatalf("window 0 feature %d = %v, want %v", f, got, want)
		}
	}
	if math.Abs(ds.AggTgen[0]-2) > 1e-9 || math.Abs(ds.AggTgen[1]-7) > 1e-9 {
		t.Fatalf("AggTgen = %v", ds.AggTgen)
	}
}

func TestSlopesFollowPaperFormula(t *testing.T) {
	// Window with n member datapoints: slope = (x_end - x_start)/n.
	h := &trace.History{Runs: []trace.Run{linearRun(1, 10, 20)}}
	cfg := Config{WindowSec: 5, IncludeSlopes: true}
	ds, err := Aggregate(h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// First window: members t=0..4, n=5; feature f: x_start=0, x_end=4(f+1).
	for f := 0; f < trace.NumFeatures; f++ {
		slopeCol := trace.NumFeatures + f
		want := 4 * float64(f+1) / 5
		if got := ds.X[0][slopeCol]; math.Abs(got-want) > 1e-9 {
			t.Fatalf("slope feature %d = %v, want %v", f, got, want)
		}
	}
}

func TestIntergenColumn(t *testing.T) {
	// Uneven sampling: gaps grow over time.
	var run trace.Run
	times := []float64{0, 1, 3, 6, 10, 15} // gaps: 0,1,2,3,4,5
	for _, tm := range times {
		var d trace.Datapoint
		d.Tgen = tm
		run.Datapoints = append(run.Datapoints, d)
	}
	run.Failed = true
	run.FailTime = 20
	h := &trace.History{Runs: []trace.Run{run}}
	ds, err := Aggregate(h, Config{WindowSec: 100, IncludeIntergen: true})
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumRows() != 1 {
		t.Fatalf("rows = %d", ds.NumRows())
	}
	ig := ds.X[0][ds.ColIndex(IntergenName)]
	// Mean gap = (0+1+2+3+4+5)/6 = 2.5.
	if math.Abs(ig-2.5) > 1e-9 {
		t.Fatalf("intergen = %v, want 2.5", ig)
	}
}

func TestRTTFLabels(t *testing.T) {
	h := &trace.History{Runs: []trace.Run{linearRun(1, 10, 20)}}
	ds, err := Aggregate(h, Config{WindowSec: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Window centers at 2 and 7; fail at 20 → RTTF 18 and 13.
	if math.Abs(ds.RTTF[0]-18) > 1e-9 || math.Abs(ds.RTTF[1]-13) > 1e-9 {
		t.Fatalf("RTTF = %v", ds.RTTF)
	}
	// RTTF is monotone decreasing within a run.
	for i := 1; i < ds.NumRows(); i++ {
		if ds.Run[i] == ds.Run[i-1] && ds.RTTF[i] >= ds.RTTF[i-1] {
			t.Fatal("RTTF not decreasing within run")
		}
	}
}

func TestUnfailedRunsDroppedByDefault(t *testing.T) {
	failed := linearRun(1, 10, 20)
	truncated := linearRun(1, 10, 0)
	truncated.Failed = false
	h := &trace.History{Runs: []trace.Run{failed, truncated}}
	ds, err := Aggregate(h, Config{WindowSec: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range ds.Run {
		if r != 0 {
			t.Fatal("unfailed run included")
		}
	}
	// With KeepUnfailedRuns, rows appear with NaN labels.
	cfg := Config{WindowSec: 5, KeepUnfailedRuns: true}
	ds2, err := Aggregate(h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	nan := 0
	for _, v := range ds2.RTTF {
		if math.IsNaN(v) {
			nan++
		}
	}
	if nan != 2 {
		t.Fatalf("NaN labels = %d, want 2", nan)
	}
	labeled := DropUnlabeled(ds2)
	if labeled.NumRows() != ds2.NumRows()-2 {
		t.Fatalf("DropUnlabeled kept %d rows", labeled.NumRows())
	}
}

func TestAggregateErrors(t *testing.T) {
	h := &trace.History{}
	if _, err := Aggregate(h, Config{WindowSec: 5}); err != ErrNoData {
		t.Fatalf("empty history err = %v, want ErrNoData", err)
	}
	if _, err := Aggregate(h, Config{WindowSec: 0}); err == nil {
		t.Fatal("bad config accepted")
	}
	// Invalid history rejected.
	bad := &trace.History{Runs: []trace.Run{{Datapoints: []trace.Datapoint{{Tgen: 5}, {Tgen: 1}}}}}
	if _, err := Aggregate(bad, Config{WindowSec: 5, KeepUnfailedRuns: true}); err == nil {
		t.Fatal("invalid history accepted")
	}
}

func TestEmptyWindowsSkipped(t *testing.T) {
	// Datapoints at t=1 and t=100: windows in between have no members
	// and must not produce rows.
	var run trace.Run
	for _, tm := range []float64{1, 100} {
		var d trace.Datapoint
		d.Tgen = tm
		run.Datapoints = append(run.Datapoints, d)
	}
	run.Failed = true
	run.FailTime = 120
	h := &trace.History{Runs: []trace.Run{run}}
	ds, err := Aggregate(h, Config{WindowSec: 10})
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", ds.NumRows())
	}
}

func TestProject(t *testing.T) {
	h := &trace.History{Runs: []trace.Run{linearRun(1, 10, 20)}}
	ds, err := Aggregate(h, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p, err := ds.Project([]string{"mem_free", "swap_used_slope"})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumCols() != 2 || p.NumRows() != ds.NumRows() {
		t.Fatalf("projected shape %dx%d", p.NumRows(), p.NumCols())
	}
	if p.X[0][0] != ds.X[0][ds.ColIndex("mem_free")] {
		t.Fatal("projection scrambled values")
	}
	if _, err := ds.Project([]string{"bogus"}); err == nil {
		t.Fatal("unknown column accepted")
	}
}

// Property: aggregation conserves mass — the mean of each aggregated
// column equals the mean of the raw feature when every window has
// uniform membership (equal interval, window = k*interval).
func TestAggregationConservation(t *testing.T) {
	f := func(kRaw uint8) bool {
		k := int(kRaw%5) + 1
		interval := 1.0
		n := 20 * k // complete windows only
		run := linearRun(interval, n, float64(n)+10)
		h := &trace.History{Runs: []trace.Run{run}}
		ds, err := Aggregate(h, Config{WindowSec: float64(k) * interval})
		if err != nil {
			return false
		}
		for f := 0; f < trace.NumFeatures; f++ {
			var rawSum, aggSum float64
			for _, d := range run.Datapoints {
				rawSum += d.Features[f]
			}
			for _, row := range ds.X {
				aggSum += row[f]
			}
			rawMean := rawSum / float64(n)
			aggMean := aggSum / float64(ds.NumRows())
			if math.Abs(rawMean-aggMean) > 1e-6*(1+math.Abs(rawMean)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: RTTF labels are always non-negative and monotone decreasing
// within any run.
func TestRTTFMonotoneProperty(t *testing.T) {
	src := randx.New(5)
	f := func(seed uint16) bool {
		local := src.Fork(uint64(seed))
		var run trace.Run
		tm := 0.0
		n := 30 + local.Intn(50)
		for i := 0; i < n; i++ {
			tm += local.Uniform(0.5, 3)
			var d trace.Datapoint
			d.Tgen = tm
			run.Datapoints = append(run.Datapoints, d)
		}
		run.Failed = true
		run.FailTime = tm + local.Uniform(0, 5)
		h := &trace.History{Runs: []trace.Run{run}}
		ds, err := Aggregate(h, Config{WindowSec: 7})
		if err != nil {
			return false
		}
		prev := math.Inf(1)
		for i, v := range ds.RTTF {
			if v < 0 || v > prev {
				return false
			}
			_ = i
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitByRun(t *testing.T) {
	h := &trace.History{}
	for i := 0; i < 10; i++ {
		h.Runs = append(h.Runs, linearRun(1, 20, 25))
	}
	ds, err := Aggregate(h, Config{WindowSec: 5})
	if err != nil {
		t.Fatal(err)
	}
	train, val, err := Split(ds, SplitByRun, 0.3, 99)
	if err != nil {
		t.Fatal(err)
	}
	// No run appears on both sides.
	trainRuns := map[int]bool{}
	for _, r := range train.Run {
		trainRuns[r] = true
	}
	for _, r := range val.Run {
		if trainRuns[r] {
			t.Fatalf("run %d leaked into both splits", r)
		}
	}
	if train.NumRows()+val.NumRows() != ds.NumRows() {
		t.Fatal("split lost rows")
	}
	// 3 of 10 runs in validation.
	valRuns := map[int]bool{}
	for _, r := range val.Run {
		valRuns[r] = true
	}
	if len(valRuns) != 3 {
		t.Fatalf("val runs = %d, want 3", len(valRuns))
	}
}

func TestSplitByRow(t *testing.T) {
	h := &trace.History{Runs: []trace.Run{linearRun(1, 100, 110)}}
	ds, err := Aggregate(h, Config{WindowSec: 2})
	if err != nil {
		t.Fatal(err)
	}
	train, val, err := Split(ds, SplitByRow, 0.25, 3)
	if err != nil {
		t.Fatal(err)
	}
	wantVal := int(0.25 * float64(ds.NumRows()))
	if val.NumRows() != wantVal {
		t.Fatalf("val rows = %d, want %d", val.NumRows(), wantVal)
	}
	if train.NumRows()+val.NumRows() != ds.NumRows() {
		t.Fatal("split lost rows")
	}
}

func TestSplitDeterminism(t *testing.T) {
	h := &trace.History{}
	for i := 0; i < 6; i++ {
		h.Runs = append(h.Runs, linearRun(1, 20, 25))
	}
	ds, _ := Aggregate(h, Config{WindowSec: 5})
	t1, v1, err := Split(ds, SplitByRun, 0.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	t2, v2, err := Split(ds, SplitByRun, 0.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if t1.NumRows() != t2.NumRows() || v1.NumRows() != v2.NumRows() {
		t.Fatal("same-seed splits differ")
	}
	for i := range v1.Run {
		if v1.Run[i] != v2.Run[i] {
			t.Fatal("same-seed splits pick different runs")
		}
	}
}

func TestSplitErrors(t *testing.T) {
	h := &trace.History{Runs: []trace.Run{linearRun(1, 20, 25)}}
	ds, _ := Aggregate(h, Config{WindowSec: 5})
	if _, _, err := Split(ds, SplitByRun, 0, 1); err == nil {
		t.Fatal("valFrac=0 accepted")
	}
	if _, _, err := Split(ds, SplitByRun, 1, 1); err == nil {
		t.Fatal("valFrac=1 accepted")
	}
	// Single run cannot be split by run.
	if _, _, err := Split(ds, SplitByRun, 0.5, 1); err == nil {
		t.Fatal("single-run SplitByRun accepted")
	}
	if _, _, err := Split(ds, SplitMode(99), 0.5, 1); err == nil {
		t.Fatal("unknown mode accepted")
	}
	empty := &Dataset{ColNames: ds.ColNames}
	if _, _, err := Split(empty, SplitByRow, 0.5, 1); err == nil {
		t.Fatal("empty dataset accepted")
	}
}
