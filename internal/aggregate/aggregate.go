// Package aggregate implements F2PM's datapoint aggregation and added
// metrics phase (paper §III-B): raw datapoints are averaged over
// fixed-size time windows; per-feature slopes and the datapoint
// inter-generation time are added as derived metrics; and each aggregated
// datapoint is labeled with its Remaining Time To Failure (RTTF) using
// the run's fail event.
package aggregate

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/trace"
)

// Config controls the aggregation.
type Config struct {
	// WindowSec is the fixed aggregation time-window size.
	WindowSec float64
	// IncludeSlopes adds the per-feature slope columns
	// slope_j = (x_end_j - x_start_j) / n  (paper eq. 1).
	IncludeSlopes bool
	// IncludeIntergen adds the datapoint inter-generation-time column
	// (and its slope when IncludeSlopes is set), the derived metric the
	// paper correlates with client response time (Figure 3).
	IncludeIntergen bool
	// KeepUnfailedRuns labels datapoints from runs without a fail event
	// with NaN RTTF instead of dropping them. The model-building phase
	// requires labeled data, so this is mainly for inspection tooling.
	KeepUnfailedRuns bool
}

// DefaultConfig returns the aggregation used by the experiments: 30 s
// windows with all derived metrics, matching the paper's full feature set
// (14 raw features + 14 slopes + inter-generation time + its slope = 30
// columns, the ceiling of the paper's Figure 4).
func DefaultConfig() Config {
	return Config{WindowSec: 30, IncludeSlopes: true, IncludeIntergen: true}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.WindowSec <= 0 {
		return fmt.Errorf("aggregate: WindowSec must be positive, got %v", c.WindowSec)
	}
	return nil
}

// Dataset is the aggregated, labeled dataset consumed by feature
// selection and model generation. Rows are aggregated datapoints.
type Dataset struct {
	// ColNames names each column of X; raw features keep their trace
	// names, slope columns get a "_slope" suffix, and the derived
	// inter-generation columns are "datapoint_intergen_time" (+slope).
	ColNames []string
	// X is the feature matrix, one row per aggregated datapoint.
	X [][]float64
	// RTTF holds the labels (seconds until the run's fail event,
	// measured from the aggregated timestamp). NaN for unfailed runs
	// when KeepUnfailedRuns is set.
	RTTF []float64
	// Run is the originating run index in the source history.
	Run []int
	// AggTgen is the aggregated timestamp (mean member Tgen) of each row.
	AggTgen []float64
}

// NumRows returns the number of aggregated datapoints.
func (d *Dataset) NumRows() int { return len(d.X) }

// NumCols returns the number of feature columns.
func (d *Dataset) NumCols() int { return len(d.ColNames) }

// ColIndex returns the index of the named column, or -1.
func (d *Dataset) ColIndex(name string) int {
	for i, n := range d.ColNames {
		if n == name {
			return i
		}
	}
	return -1
}

// Project returns a copy of the dataset keeping only the named columns,
// in the given order. Unknown names are an error. Label and bookkeeping
// slices are shared, not copied.
func (d *Dataset) Project(cols []string) (*Dataset, error) {
	idx := make([]int, len(cols))
	for i, name := range cols {
		j := d.ColIndex(name)
		if j < 0 {
			return nil, fmt.Errorf("aggregate: unknown column %q", name)
		}
		idx[i] = j
	}
	out := &Dataset{
		ColNames: append([]string(nil), cols...),
		X:        make([][]float64, len(d.X)),
		RTTF:     d.RTTF,
		Run:      d.Run,
		AggTgen:  d.AggTgen,
	}
	for r, row := range d.X {
		nr := make([]float64, len(idx))
		for i, j := range idx {
			nr[i] = row[j]
		}
		out.X[r] = nr
	}
	return out, nil
}

// IntergenName is the column name of the derived inter-generation-time
// metric.
const IntergenName = "datapoint_intergen_time"

// SlopeSuffix is appended to a feature name to form its slope column.
const SlopeSuffix = "_slope"

// ErrNoData is returned when aggregation yields no labeled rows.
var ErrNoData = errors.New("aggregate: no labeled aggregated datapoints")

// Aggregate runs the paper's §III-B phase over a data history.
func Aggregate(h *trace.History, cfg Config) (*Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := h.Validate(); err != nil {
		return nil, err
	}

	names := buildColNames(cfg)
	ds := &Dataset{ColNames: names}

	for runIdx := range h.Runs {
		run := &h.Runs[runIdx]
		if !run.Failed && !cfg.KeepUnfailedRuns {
			continue
		}
		aggregateRun(ds, run, runIdx, cfg)
	}
	if ds.NumRows() == 0 {
		return nil, ErrNoData
	}
	return ds, nil
}

func buildColNames(cfg Config) []string {
	names := trace.FeatureNames()
	if cfg.IncludeIntergen {
		names = append(names, IntergenName)
	}
	if cfg.IncludeSlopes {
		for _, n := range trace.FeatureNames() {
			names = append(names, n+SlopeSuffix)
		}
		if cfg.IncludeIntergen {
			names = append(names, IntergenName+SlopeSuffix)
		}
	}
	return names
}

// aggregateRun slices one run into windows and appends aggregated rows.
func aggregateRun(ds *Dataset, run *trace.Run, runIdx int, cfg Config) {
	dps := run.Datapoints
	if len(dps) == 0 {
		return
	}
	w := cfg.WindowSec
	// Precompute inter-generation gaps: gap[i] = Tgen[i] - Tgen[i-1];
	// gap[0] = Tgen[0] (from system start to first datapoint).
	gaps := make([]float64, len(dps))
	gaps[0] = dps[0].Tgen
	for i := 1; i < len(dps); i++ {
		gaps[i] = dps[i].Tgen - dps[i-1].Tgen
	}

	start := 0
	for start < len(dps) {
		windowIdx := int(dps[start].Tgen / w)
		winEnd := float64(windowIdx+1) * w
		end := start
		for end < len(dps) && dps[end].Tgen < winEnd {
			end++
		}
		// [start, end) fall into this window.
		n := end - start
		if n > 0 {
			row := make([]float64, len(ds.ColNames))
			col := 0
			var tgenSum float64
			// Mean of each raw feature.
			for f := 0; f < trace.NumFeatures; f++ {
				var s float64
				for i := start; i < end; i++ {
					s += dps[i].Features[f]
				}
				row[col+f] = s / float64(n)
			}
			for i := start; i < end; i++ {
				tgenSum += dps[i].Tgen
			}
			col += trace.NumFeatures
			if cfg.IncludeIntergen {
				var s float64
				for i := start; i < end; i++ {
					s += gaps[i]
				}
				row[col] = s / float64(n)
				col++
			}
			if cfg.IncludeSlopes {
				for f := 0; f < trace.NumFeatures; f++ {
					row[col+f] = (dps[end-1].Features[f] - dps[start].Features[f]) / float64(n)
				}
				col += trace.NumFeatures
				if cfg.IncludeIntergen {
					row[col] = (gaps[end-1] - gaps[start]) / float64(n)
					col++
				}
			}
			aggT := tgenSum / float64(n)
			rttf := math.NaN()
			if run.Failed {
				rttf = run.FailTime - aggT
				if rttf < 0 {
					rttf = 0
				}
			}
			ds.X = append(ds.X, row)
			ds.RTTF = append(ds.RTTF, rttf)
			ds.Run = append(ds.Run, runIdx)
			ds.AggTgen = append(ds.AggTgen, aggT)
		}
		start = end
	}
}
