// Package sysmodel models the virtual machine that hosts the monitored
// application. It replaces the paper's physical test-bed (HP ProLiant +
// VMware VM running Ubuntu) with a resource-accounting model that
// reproduces the causal chain the paper's prediction models rely on:
//
//	leaked memory and unterminated threads accumulate
//	  → anonymous memory grows
//	  → the page cache shrinks and free memory drops
//	  → anonymous pages spill to swap
//	  → paging inflates CPU I/O-wait and slows the application down
//	  → free memory and free swap are exhausted → the VM crashes.
//
// The model is sampled, not stepped: the machine keeps aggregate state
// (leaked KB, thread count, CPU-seconds consumed) and computes a full
// feature snapshot on demand, which is exactly what the feature monitor
// (FMC) needs. All quantities follow the paper's units: KB for memory and
// swap, percentages for CPU, counts for threads.
package sysmodel

import (
	"fmt"
	"math"

	"repro/internal/randx"
	"repro/internal/trace"
)

// Config describes the virtual machine.
type Config struct {
	TotalMemKB  float64 // physical memory visible to the VM
	TotalSwapKB float64 // swap space
	NumCPUs     int     // virtual CPUs

	BaseUsedKB    float64 // baseline anonymous memory (OS + idle app servers)
	BaseSharedKB  float64 // shared buffers (constant)
	BaseBuffersKB float64 // kernel buffers (constant)
	BaseThreads   int     // baseline thread count (OS + server pools)

	ThreadStackKB float64 // resident cost of one unterminated thread
	RequestMemKB  float64 // transient anonymous memory per in-flight request

	// CacheFillFrac is the fraction of leftover memory the page cache
	// occupies under no pressure (Linux fills most of free RAM with
	// cache).
	CacheFillFrac float64
	// SwapStartFrac: anonymous demand beyond this fraction of the
	// resident capacity starts spilling to swap (models swappiness).
	SwapStartFrac float64
	// MinCacheKB is the page-cache floor the kernel protects until swap
	// is itself exhausted.
	MinCacheKB float64

	// StealMeanPct is the mean hypervisor steal time percentage
	// (CPUst in the paper); sampled with exponential noise.
	StealMeanPct float64
	// NiceMeanPct is the mean niced-process CPU percentage.
	NiceMeanPct float64

	// IOWaitPerSwapMBs converts swap traffic (MB/s) into I/O-wait
	// percentage points.
	IOWaitPerSwapMBs float64
}

// DefaultConfig returns a VM comparable to the paper's test-bed guests:
// 2 GB RAM, 1 GB swap, 2 vCPUs, Ubuntu-like baseline usage.
func DefaultConfig() Config {
	return Config{
		TotalMemKB:       2 * 1024 * 1024,
		TotalSwapKB:      1 * 1024 * 1024,
		NumCPUs:          2,
		BaseUsedKB:       300 * 1024,
		BaseSharedKB:     48 * 1024,
		BaseBuffersKB:    64 * 1024,
		BaseThreads:      210,
		ThreadStackKB:    512,
		RequestMemKB:     384,
		CacheFillFrac:    0.80,
		SwapStartFrac:    0.92,
		MinCacheKB:       40 * 1024,
		StealMeanPct:     0.6,
		NiceMeanPct:      0.2,
		IOWaitPerSwapMBs: 6.0,
	}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	switch {
	case c.TotalMemKB <= 0:
		return fmt.Errorf("sysmodel: TotalMemKB must be positive, got %v", c.TotalMemKB)
	case c.TotalSwapKB < 0:
		return fmt.Errorf("sysmodel: TotalSwapKB must be non-negative, got %v", c.TotalSwapKB)
	case c.NumCPUs <= 0:
		return fmt.Errorf("sysmodel: NumCPUs must be positive, got %d", c.NumCPUs)
	case c.BaseUsedKB+c.BaseSharedKB+c.BaseBuffersKB+c.MinCacheKB >= c.TotalMemKB:
		return fmt.Errorf("sysmodel: baseline memory %v exceeds total %v",
			c.BaseUsedKB+c.BaseSharedKB+c.BaseBuffersKB+c.MinCacheKB, c.TotalMemKB)
	case c.CacheFillFrac < 0 || c.CacheFillFrac > 1:
		return fmt.Errorf("sysmodel: CacheFillFrac must be in [0,1], got %v", c.CacheFillFrac)
	case c.SwapStartFrac <= 0 || c.SwapStartFrac > 1:
		return fmt.Errorf("sysmodel: SwapStartFrac must be in (0,1], got %v", c.SwapStartFrac)
	}
	return nil
}

// Machine is the live VM state. It is not safe for concurrent use; in the
// simulator it lives on the single-threaded DES event loop.
type Machine struct {
	cfg Config
	rng *randx.Source

	leakedKB     float64
	extraThreads int
	activeReqs   int

	// CPU-second accumulators since the last snapshot.
	cpuUserSec float64
	cpuSysSec  float64
	lastSample float64 // virtual time of last snapshot
	lastSwapKB float64 // swap usage at last snapshot (for traffic rate)

	started float64 // virtual time the machine (re)started
}

// NewMachine creates a machine from cfg with its own random stream.
func NewMachine(cfg Config, rng *randx.Source) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Machine{cfg: cfg, rng: rng}, nil
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Restart clears all accumulated anomalies and counters, as if the VM was
// rebooted (the paper's recovery action after each fail event). now is the
// virtual time of the restart.
func (m *Machine) Restart(now float64) {
	m.leakedKB = 0
	m.extraThreads = 0
	m.activeReqs = 0
	m.cpuUserSec = 0
	m.cpuSysSec = 0
	m.lastSample = now
	m.lastSwapKB = 0
	m.started = now
}

// StartTime returns the virtual time of the last restart.
func (m *Machine) StartTime() float64 { return m.started }

// Uptime returns seconds since the last restart.
func (m *Machine) Uptime(now float64) float64 { return now - m.started }

// Leak adds kb of leaked (never-freed) anonymous memory.
func (m *Machine) Leak(kb float64) {
	if kb > 0 {
		m.leakedKB += kb
	}
}

// LeakedKB returns the cumulative leaked memory.
func (m *Machine) LeakedKB() float64 { return m.leakedKB }

// SpawnThread adds one unterminated thread.
func (m *Machine) SpawnThread() { m.extraThreads++ }

// ExtraThreads returns the number of unterminated threads.
func (m *Machine) ExtraThreads() int { return m.extraThreads }

// RequestStarted and RequestFinished track in-flight requests, which
// contribute transient memory and worker threads.
func (m *Machine) RequestStarted() { m.activeReqs++ }

// RequestFinished marks one in-flight request as complete.
func (m *Machine) RequestFinished() {
	if m.activeReqs > 0 {
		m.activeReqs--
	}
}

// ActiveRequests returns the in-flight request count.
func (m *Machine) ActiveRequests() int { return m.activeReqs }

// ConsumeCPU records CPU time consumed by the application between
// snapshots, split into user and system seconds.
func (m *Machine) ConsumeCPU(userSec, sysSec float64) {
	if userSec > 0 {
		m.cpuUserSec += userSec
	}
	if sysSec > 0 {
		m.cpuSysSec += sysSec
	}
}

// memoryState is the derived memory accounting.
type memoryState struct {
	usedKB, freeKB, cachedKB float64
	swapUsedKB, swapFreeKB   float64
	anonDemandKB             float64
	oom                      bool
}

func (m *Machine) memory() memoryState {
	c := &m.cfg
	anon := c.BaseUsedKB + m.leakedKB +
		float64(m.extraThreads)*c.ThreadStackKB +
		float64(m.activeReqs)*c.RequestMemKB

	memForAnonCache := c.TotalMemKB - c.BaseSharedKB - c.BaseBuffersKB
	residentCap := memForAnonCache - c.MinCacheKB
	swapStart := c.SwapStartFrac * residentCap

	var swapUsed float64
	if anon > swapStart {
		swapUsed = anon - swapStart
		if swapUsed > c.TotalSwapKB {
			swapUsed = c.TotalSwapKB
		}
	}
	residentAnon := anon - swapUsed
	leftover := memForAnonCache - residentAnon
	var st memoryState
	st.anonDemandKB = anon
	st.swapUsedKB = swapUsed
	st.swapFreeKB = c.TotalSwapKB - swapUsed
	if leftover <= 0 {
		// Past total exhaustion: the machine is effectively dead.
		st.oom = true
		st.cachedKB = 0
		st.freeKB = 0
		st.usedKB = memForAnonCache + c.BaseSharedKB + c.BaseBuffersKB
		return st
	}
	cache := c.CacheFillFrac * leftover
	if cache < c.MinCacheKB {
		cache = c.MinCacheKB
	}
	if cache > leftover {
		cache = leftover
	}
	st.cachedKB = cache
	st.freeKB = leftover - cache
	st.usedKB = residentAnon + c.BaseSharedKB + c.BaseBuffersKB
	if st.swapFreeKB <= 0 && st.freeKB <= 0.01*c.TotalMemKB {
		st.oom = true
	}
	return st
}

// MemoryPressure returns the anonymous-demand fraction of total capacity
// (memory + swap): 0 when idle, 1 at the crash point, >1 past it.
func (m *Machine) MemoryPressure() float64 {
	c := &m.cfg
	capacity := (c.TotalMemKB - c.BaseSharedKB - c.BaseBuffersKB - c.MinCacheKB) + c.TotalSwapKB
	return m.memory().anonDemandKB / capacity
}

// Slowdown returns the multiplicative service-time penalty the application
// experiences under the current memory and thread pressure. 1 when
// healthy; grows superlinearly when the machine starts swapping (paging
// on the critical path) and mildly with the scheduler load of extra
// threads. The paper's Figure 3 response-time explosion near the crash
// point comes from this factor.
func (m *Machine) Slowdown() float64 {
	st := m.memory()
	s := 1.0
	if m.cfg.TotalSwapKB > 0 && st.swapUsedKB > 0 {
		r := st.swapUsedKB / m.cfg.TotalSwapKB
		// Paging penalty: quadratic while swap fills, with a sharp
		// high-order blow-up as it approaches exhaustion — working sets
		// no longer fit and every request thrashes. This is what drives
		// the paper's Figure 3 response-time explosion near the crash.
		s += 3.5*r*r + 30*math.Pow(r, 8)
	}
	// Scheduler pressure from unterminated threads.
	s += 0.25 * float64(m.extraThreads) / 1000
	if st.oom {
		s += 25
	}
	return s
}

// MonitorSkew returns the extra delay (seconds) the feature monitor
// experiences when generating a datapoint, modeling the OS-scheduler skew
// the paper observes in Figure 3 (datapoint inter-generation time grows
// when the system is overloaded). base is the nominal sampling interval.
func (m *Machine) MonitorSkew(base float64) float64 {
	slow := m.Slowdown()
	skew := (slow - 1) * 0.8 * base
	// The monitor is a tiny resident process: it suffers scheduling
	// delay, but unlike the application it does not thrash, so its skew
	// saturates (the paper's generation time tops out near ~3-4x the
	// nominal interval).
	if max := 2.6 * base; skew > max {
		skew = max
	}
	// Small always-present scheduling noise.
	skew += m.rng.Exp(0.02 * base)
	return skew
}

// Snapshot computes the feature vector at virtual time now and resets the
// CPU accumulators. Tgen is the machine uptime, matching the paper
// ("timestamp denoting the elapsed time since the system has started").
func (m *Machine) Snapshot(now float64) trace.Datapoint {
	c := &m.cfg
	st := m.memory()
	dt := now - m.lastSample
	if dt <= 0 {
		dt = 1e-9
	}

	var d trace.Datapoint
	d.Tgen = m.Uptime(now)
	d.Features[trace.NumThreads] = float64(c.BaseThreads + m.extraThreads + m.activeReqs)
	d.Features[trace.MemUsed] = st.usedKB
	d.Features[trace.MemFree] = st.freeKB
	d.Features[trace.MemShared] = c.BaseSharedKB
	d.Features[trace.MemBuffers] = c.BaseBuffersKB
	d.Features[trace.MemCached] = st.cachedKB
	d.Features[trace.SwapUsed] = st.swapUsedKB
	d.Features[trace.SwapFree] = st.swapFreeKB

	// CPU percentages over the sampling window.
	cpuCap := float64(c.NumCPUs) * dt
	user := 100 * m.cpuUserSec / cpuCap
	sys := 100 * m.cpuSysSec / cpuCap
	// Paging traffic drives I/O wait: swap delta across the window plus
	// sustained thrash when the system lives near exhaustion.
	swapDeltaMB := (st.swapUsedKB - m.lastSwapKB) / 1024
	if swapDeltaMB < 0 {
		swapDeltaMB = 0
	}
	iow := c.IOWaitPerSwapMBs * swapDeltaMB / dt
	if c.TotalSwapKB > 0 {
		occ := st.swapUsedKB / c.TotalSwapKB
		iow += 18 * occ * occ // residual thrash while swap stays occupied
	}
	nice := m.rng.Exp(c.NiceMeanPct + 1e-9)
	steal := m.rng.Exp(c.StealMeanPct + 1e-9)

	// Normalize: the six shares cannot exceed 100%.
	user, sys, iow, nice, steal = clampShares(user, sys, iow, nice, steal)
	idle := 100 - user - sys - iow - nice - steal
	if idle < 0 { // floating-point slack after proportional scaling
		idle = 0
	}

	d.Features[trace.CPUUser] = user
	d.Features[trace.CPUNice] = nice
	d.Features[trace.CPUSystem] = sys
	d.Features[trace.CPUIOWait] = iow
	d.Features[trace.CPUSteal] = steal
	d.Features[trace.CPUIdle] = idle

	m.cpuUserSec = 0
	m.cpuSysSec = 0
	m.lastSample = now
	m.lastSwapKB = st.swapUsedKB
	return d
}

// clampShares scales the five busy shares down proportionally when they
// would exceed 100%.
func clampShares(user, sys, iow, nice, steal float64) (float64, float64, float64, float64, float64) {
	vals := []*float64{&user, &sys, &iow, &nice, &steal}
	var total float64
	for _, v := range vals {
		if *v < 0 {
			*v = 0
		}
		total += *v
	}
	if total > 100 {
		scale := 100 / total
		for _, v := range vals {
			*v *= scale
		}
	}
	return user, sys, iow, nice, steal
}

// OOM reports whether the machine has exhausted memory and swap — the
// hard crash state. The fail condition usually fires slightly earlier
// via the monitored features.
func (m *Machine) OOM() bool { return m.memory().oom }
