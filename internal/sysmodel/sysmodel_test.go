package sysmodel

import (
	"testing"
	"testing/quick"

	"repro/internal/randx"
	"repro/internal/trace"
)

func newTestMachine(t *testing.T) *Machine {
	t.Helper()
	m, err := NewMachine(DefaultConfig(), randx.New(1))
	if err != nil {
		t.Fatal(err)
	}
	m.Restart(0)
	return m
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := map[string]func(*Config){
		"zero mem":       func(c *Config) { c.TotalMemKB = 0 },
		"negative swap":  func(c *Config) { c.TotalSwapKB = -1 },
		"zero cpus":      func(c *Config) { c.NumCPUs = 0 },
		"baseline > mem": func(c *Config) { c.BaseUsedKB = c.TotalMemKB },
		"bad cache frac": func(c *Config) { c.CacheFillFrac = 1.5 },
		"bad swap start": func(c *Config) { c.SwapStartFrac = 0 },
	}
	for name, mutate := range cases {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: invalid config accepted", name)
		}
		if _, err := NewMachine(c, randx.New(1)); err == nil {
			t.Errorf("%s: NewMachine accepted invalid config", name)
		}
	}
}

func TestSnapshotHealthy(t *testing.T) {
	m := newTestMachine(t)
	d := m.Snapshot(1.5)
	if d.Tgen != 1.5 {
		t.Fatalf("Tgen = %v, want 1.5", d.Tgen)
	}
	if d.Features[trace.SwapUsed] != 0 {
		t.Fatalf("healthy machine uses swap: %v", d.Features[trace.SwapUsed])
	}
	if d.Features[trace.MemFree] <= 0 {
		t.Fatal("healthy machine has no free memory")
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Memory conservation: used + free + cached == total
	// (used already includes shared and buffers in our accounting).
	total := d.Features[trace.MemUsed] + d.Features[trace.MemFree] + d.Features[trace.MemCached]
	if diff := total - m.Config().TotalMemKB; diff > 1 || diff < -1 {
		t.Fatalf("memory not conserved: sum=%v total=%v", total, m.Config().TotalMemKB)
	}
}

func TestCPUSharesSumTo100(t *testing.T) {
	m := newTestMachine(t)
	m.ConsumeCPU(1.2, 0.3)
	d := m.Snapshot(1.5)
	sum := d.Features[trace.CPUUser] + d.Features[trace.CPUNice] +
		d.Features[trace.CPUSystem] + d.Features[trace.CPUIOWait] +
		d.Features[trace.CPUSteal] + d.Features[trace.CPUIdle]
	if sum < 99.999 || sum > 100.001 {
		t.Fatalf("CPU shares sum to %v", sum)
	}
	if d.Features[trace.CPUUser] <= 0 {
		t.Fatal("consumed user CPU not reflected")
	}
}

func TestCPUOverloadClamped(t *testing.T) {
	m := newTestMachine(t)
	m.ConsumeCPU(100, 100) // far beyond 2 CPUs * 1.5 s
	d := m.Snapshot(1.5)
	busy := d.Features[trace.CPUUser] + d.Features[trace.CPUSystem]
	if busy > 100.001 {
		t.Fatalf("CPU busy share %v exceeds 100", busy)
	}
	if d.Features[trace.CPUIdle] < 0 {
		t.Fatalf("negative idle %v", d.Features[trace.CPUIdle])
	}
}

func TestLeakGrowsSwapAndShrinksCache(t *testing.T) {
	m := newTestMachine(t)
	base := m.Snapshot(1)
	// Leak half the machine.
	m.Leak(m.Config().TotalMemKB / 2)
	mid := m.Snapshot(2)
	if mid.Features[trace.MemFree] >= base.Features[trace.MemFree] {
		t.Fatal("leak did not reduce free memory")
	}
	if mid.Features[trace.MemCached] >= base.Features[trace.MemCached] {
		t.Fatal("leak did not shrink page cache")
	}
	// Leak enough to spill to swap.
	m.Leak(m.Config().TotalMemKB)
	end := m.Snapshot(3)
	if end.Features[trace.SwapUsed] <= 0 {
		t.Fatal("massive leak did not reach swap")
	}
	if end.Features[trace.CPUIOWait] <= mid.Features[trace.CPUIOWait] {
		t.Fatal("swapping did not raise iowait")
	}
}

func TestExhaustionTriggersFailCondition(t *testing.T) {
	m := newTestMachine(t)
	cond := trace.MemoryExhaustion(0.02, 0.02)
	d := m.Snapshot(1)
	if cond(&d) {
		t.Fatal("fresh machine fails condition")
	}
	// Fill memory + swap completely.
	m.Leak(m.Config().TotalMemKB + m.Config().TotalSwapKB)
	d = m.Snapshot(2)
	if !cond(&d) {
		t.Fatalf("exhausted machine passes condition: free=%v swapFree=%v",
			d.Features[trace.MemFree], d.Features[trace.SwapFree])
	}
	if !m.OOM() {
		t.Fatal("OOM not reported")
	}
}

func TestSlowdownMonotoneInLeaks(t *testing.T) {
	m := newTestMachine(t)
	prev := m.Slowdown()
	if prev != 1 {
		t.Fatalf("healthy slowdown = %v, want 1", prev)
	}
	for i := 0; i < 10; i++ {
		m.Leak(m.Config().TotalMemKB / 8)
		s := m.Slowdown()
		if s < prev {
			t.Fatalf("slowdown decreased after leak: %v -> %v", prev, s)
		}
		prev = s
	}
	if prev <= 1.5 {
		t.Fatalf("slowdown after massive leak only %v", prev)
	}
}

func TestThreadsAffectSnapshotAndSlowdown(t *testing.T) {
	m := newTestMachine(t)
	d0 := m.Snapshot(1)
	for i := 0; i < 500; i++ {
		m.SpawnThread()
	}
	d1 := m.Snapshot(2)
	wantThreads := d0.Features[trace.NumThreads] + 500
	if d1.Features[trace.NumThreads] != wantThreads {
		t.Fatalf("threads = %v, want %v", d1.Features[trace.NumThreads], wantThreads)
	}
	if d1.Features[trace.MemFree] >= d0.Features[trace.MemFree] {
		t.Fatal("thread stacks did not consume memory")
	}
	if m.Slowdown() <= 1 {
		t.Fatal("threads did not slow the machine")
	}
}

func TestRequestsTransient(t *testing.T) {
	m := newTestMachine(t)
	m.RequestStarted()
	m.RequestStarted()
	if m.ActiveRequests() != 2 {
		t.Fatalf("active = %d", m.ActiveRequests())
	}
	d := m.Snapshot(1)
	base := d.Features[trace.NumThreads]
	m.RequestFinished()
	m.RequestFinished()
	m.RequestFinished() // extra finish must not go negative
	if m.ActiveRequests() != 0 {
		t.Fatalf("active after finish = %d", m.ActiveRequests())
	}
	d2 := m.Snapshot(2)
	if d2.Features[trace.NumThreads] >= base {
		t.Fatal("finished requests still counted in threads")
	}
}

func TestRestartClearsState(t *testing.T) {
	m := newTestMachine(t)
	m.Leak(1e6)
	m.SpawnThread()
	m.RequestStarted()
	m.ConsumeCPU(5, 5)
	m.Restart(100)
	if m.LeakedKB() != 0 || m.ExtraThreads() != 0 || m.ActiveRequests() != 0 {
		t.Fatal("restart did not clear anomalies")
	}
	if m.StartTime() != 100 || m.Uptime(130) != 30 {
		t.Fatalf("restart time bookkeeping wrong: start=%v", m.StartTime())
	}
	d := m.Snapshot(101.5)
	if d.Tgen != 1.5 {
		t.Fatalf("Tgen after restart = %v, want 1.5", d.Tgen)
	}
	if d.Features[trace.SwapUsed] != 0 {
		t.Fatal("swap persists across restart")
	}
}

func TestMonitorSkewGrowsWithPressure(t *testing.T) {
	m := newTestMachine(t)
	healthy := 0.0
	for i := 0; i < 50; i++ {
		healthy += m.MonitorSkew(1.5)
	}
	healthy /= 50
	m.Leak(m.Config().TotalMemKB + m.Config().TotalSwapKB*0.9)
	loaded := 0.0
	for i := 0; i < 50; i++ {
		loaded += m.MonitorSkew(1.5)
	}
	loaded /= 50
	if loaded <= healthy {
		t.Fatalf("skew did not grow under pressure: healthy=%v loaded=%v", healthy, loaded)
	}
}

func TestMemoryPressureScale(t *testing.T) {
	m := newTestMachine(t)
	p0 := m.MemoryPressure()
	if p0 <= 0 || p0 >= 0.5 {
		t.Fatalf("baseline pressure = %v", p0)
	}
	m.Leak(m.Config().TotalMemKB + m.Config().TotalSwapKB)
	if p := m.MemoryPressure(); p < 1 {
		t.Fatalf("exhausted pressure = %v, want >= 1", p)
	}
}

// Property: snapshots are always structurally valid and conserve memory,
// for arbitrary leak/thread/request loads.
func TestSnapshotAlwaysValid(t *testing.T) {
	cfg := DefaultConfig()
	f := func(leakMB uint16, threads uint8, reqs uint8, cpu uint8) bool {
		m, err := NewMachine(cfg, randx.New(7))
		if err != nil {
			return false
		}
		m.Restart(0)
		m.Leak(float64(leakMB) * 1024)
		for i := 0; i < int(threads); i++ {
			m.SpawnThread()
		}
		for i := 0; i < int(reqs); i++ {
			m.RequestStarted()
		}
		m.ConsumeCPU(float64(cpu)/10, float64(cpu)/20)
		d := m.Snapshot(1.5)
		if d.Validate() != nil {
			return false
		}
		for _, f := range d.Features {
			if f < 0 {
				return false
			}
		}
		swapTotal := d.Features[trace.SwapUsed] + d.Features[trace.SwapFree]
		if diff := swapTotal - cfg.TotalSwapKB; diff > 1 || diff < -1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSnapshot(b *testing.B) {
	m, err := NewMachine(DefaultConfig(), randx.New(1))
	if err != nil {
		b.Fatal(err)
	}
	m.Restart(0)
	m.Leak(500 * 1024)
	for i := 0; i < b.N; i++ {
		m.ConsumeCPU(0.5, 0.1)
		_ = m.Snapshot(float64(i) * 1.5)
	}
}
