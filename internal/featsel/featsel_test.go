package featsel

import (
	"errors"
	"math"
	"testing"

	"repro/internal/aggregate"
	"repro/internal/randx"
)

// syntheticDataset builds an aggregated-style dataset with columns on
// paper-like scales: two memory-scale columns (~1e6), two cpu-scale
// columns (~1e2), and one slope-scale column (~1e1). RTTF depends
// strongly on columns 0 and 2, weakly on 4.
func syntheticDataset(n int, seed uint64) *aggregate.Dataset {
	src := randx.New(seed)
	ds := &aggregate.Dataset{
		ColNames: []string{"mem_free", "mem_cached", "cpu_iowait", "cpu_user", "swap_used_slope"},
	}
	for i := 0; i < n; i++ {
		memFree := src.Uniform(1e5, 2e6)
		memCached := src.Uniform(1e5, 8e5)
		iow := src.Uniform(0, 60)
		user := src.Uniform(0, 90)
		slope := src.Uniform(-20, 20)
		rttf := 3e-4*memFree + 8.0*iow + 2.0*slope + src.Norm(0, 15)
		ds.X = append(ds.X, []float64{memFree, memCached, iow, user, slope})
		ds.RTTF = append(ds.RTTF, rttf)
		ds.Run = append(ds.Run, 0)
		ds.AggTgen = append(ds.AggTgen, float64(i))
	}
	return ds
}

func TestLambdaGrid(t *testing.T) {
	g := LambdaGrid(0, 9)
	if len(g) != 10 || g[0] != 1 || g[9] != 1e9 {
		t.Fatalf("grid = %v", g)
	}
	// Reversed bounds are normalized.
	g2 := LambdaGrid(3, 1)
	if len(g2) != 3 || g2[0] != 10 || g2[2] != 1000 {
		t.Fatalf("reversed grid = %v", g2)
	}
}

func TestPathMonotoneSelection(t *testing.T) {
	ds := syntheticDataset(400, 1)
	pts, err := Path(ds, LambdaGrid(0, 9))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 10 {
		t.Fatalf("points = %d", len(pts))
	}
	prev := math.MaxInt
	for _, p := range pts {
		if p.NumSelected() > prev {
			t.Fatalf("selection grew along path at lambda %g: %d > %d", p.Lambda, p.NumSelected(), prev)
		}
		prev = p.NumSelected()
	}
	if pts[0].NumSelected() < 3 {
		t.Fatalf("low lambda selected only %d", pts[0].NumSelected())
	}
	if last := pts[len(pts)-1].NumSelected(); last >= pts[0].NumSelected() {
		t.Fatalf("high lambda did not shrink selection: %d", last)
	}
}

func TestPathWeightsMatchSelection(t *testing.T) {
	ds := syntheticDataset(300, 2)
	pts, err := Path(ds, []float64{100})
	if err != nil {
		t.Fatal(err)
	}
	p := pts[0]
	if len(p.Weights) != len(p.Selected) {
		t.Fatalf("weights %d vs selected %d", len(p.Weights), len(p.Selected))
	}
	for _, name := range p.Selected {
		if p.Weights[name] == 0 {
			t.Fatalf("selected feature %q has zero weight", name)
		}
	}
	// SortedWeights ascending by |beta|.
	sw := p.SortedWeights()
	for i := 1; i < len(sw); i++ {
		if math.Abs(sw[i].Beta) < math.Abs(sw[i-1].Beta) {
			t.Fatal("SortedWeights not ascending")
		}
	}
}

func TestPathErrors(t *testing.T) {
	ds := syntheticDataset(50, 3)
	if _, err := Path(ds, nil); err == nil {
		t.Fatal("empty grid accepted")
	}
	if _, err := Path(ds, []float64{-1}); err == nil {
		t.Fatal("negative lambda accepted")
	}
	empty := &aggregate.Dataset{ColNames: ds.ColNames}
	if _, err := Path(empty, []float64{1}); !errors.Is(err, aggregate.ErrNoData) {
		t.Fatalf("empty dataset err = %v", err)
	}
}

func TestSelectProjects(t *testing.T) {
	ds := syntheticDataset(400, 4)
	proj, pp, err := Select(ds, 1e3)
	if err != nil {
		t.Fatal(err)
	}
	if proj.NumCols() != pp.NumSelected() {
		t.Fatalf("projection has %d cols, path point %d", proj.NumCols(), pp.NumSelected())
	}
	if proj.NumRows() != ds.NumRows() {
		t.Fatal("projection changed row count")
	}
	for i, name := range pp.Selected {
		if proj.ColNames[i] != name {
			t.Fatal("projection order mismatch")
		}
	}
}

func TestSelectEmptySelection(t *testing.T) {
	ds := syntheticDataset(100, 5)
	got, pp, err := Select(ds, 1e15)
	if !errors.Is(err, ErrEmptySelection) {
		t.Fatalf("err = %v, want ErrEmptySelection", err)
	}
	if pp.NumSelected() != 0 {
		t.Fatalf("selected = %d", pp.NumSelected())
	}
	if got != ds {
		t.Fatal("empty selection should return original dataset")
	}
}

func TestPathDeterminism(t *testing.T) {
	ds := syntheticDataset(200, 6)
	a, err := Path(ds, LambdaGrid(0, 5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Path(ds, LambdaGrid(0, 5))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].NumSelected() != b[i].NumSelected() {
			t.Fatal("path not deterministic")
		}
		for name, w := range a[i].Weights {
			if b[i].Weights[name] != w {
				t.Fatal("weights not deterministic")
			}
		}
	}
}
