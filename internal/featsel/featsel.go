// Package featsel implements F2PM's feature selection phase
// (paper §III-C): Lasso regularization is run over a grid of λ values;
// for each λ the features whose β entries are non-zero form a candidate
// training set. Increasing λ zeroes more weights, shrinking the selected
// set (the paper's Figure 4); the surviving weights at a given λ are the
// paper's Table I.
package featsel

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/aggregate"
	"repro/internal/ml/lasso"
)

// PathPoint is the outcome of Lasso regularization at one λ.
type PathPoint struct {
	// Lambda is the regularization factor.
	Lambda float64
	// Selected lists the surviving column names in dataset order.
	Selected []string
	// Weights maps each surviving column to its β entry.
	Weights map[string]float64
	// Iterations is the number of coordinate-descent sweeps used.
	Iterations int
}

// NumSelected returns the size of the selected set.
func (p *PathPoint) NumSelected() int { return len(p.Selected) }

// SortedWeights returns the selected (name, weight) pairs ordered by
// ascending |weight|, the presentation order of the paper's Table I.
func (p *PathPoint) SortedWeights() []Weight {
	out := make([]Weight, 0, len(p.Selected))
	for _, name := range p.Selected {
		out = append(out, Weight{Name: name, Beta: p.Weights[name]})
	}
	sort.Slice(out, func(i, j int) bool {
		ai, aj := math.Abs(out[i].Beta), math.Abs(out[j].Beta)
		if ai != aj {
			return ai < aj
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Weight is one surviving feature weight.
type Weight struct {
	Name string
	Beta float64
}

// LambdaGrid returns the paper's λ̄ vector: powers of ten from 10^loExp
// to 10^hiExp inclusive (Figure 4 uses 10⁰..10⁹).
func LambdaGrid(loExp, hiExp int) []float64 {
	if hiExp < loExp {
		loExp, hiExp = hiExp, loExp
	}
	out := make([]float64, 0, hiExp-loExp+1)
	for e := loExp; e <= hiExp; e++ {
		out = append(out, math.Pow(10, float64(e)))
	}
	return out
}

// Path runs Lasso regularization at every λ in lambdas (ascending order
// recommended; warm starts chain consecutive solutions). The dataset
// must carry finite RTTF labels. The whole grid shares one covariance
// build (lasso.FitPath): XᵀX and Xᵀy are computed once instead of once
// per λ, which is what keeps long paths cheap.
func Path(ds *aggregate.Dataset, lambdas []float64) ([]PathPoint, error) {
	if ds.NumRows() == 0 {
		return nil, aggregate.ErrNoData
	}
	cov, err := lasso.NewCov(ds.X, ds.RTTF)
	if err != nil {
		return nil, fmt.Errorf("featsel: building covariance: %w", err)
	}
	return PathFromCov(cov, ds.ColNames, lambdas)
}

// PathFromCov is Path over an existing covariance state, the entry
// point for incremental retraining: callers that maintain a lasso.Cov
// across appended training rows (core.Pipeline.Update) recompute the
// whole regularization path at O(d²)-per-λ cost, never touching the
// row history.
func PathFromCov(cov *lasso.Cov, colNames []string, lambdas []float64) ([]PathPoint, error) {
	if len(colNames) != cov.Dim() {
		return nil, fmt.Errorf("featsel: %d column names for dimension %d", len(colNames), cov.Dim())
	}
	if len(lambdas) == 0 {
		return nil, fmt.Errorf("featsel: empty lambda grid")
	}
	for _, l := range lambdas {
		if l < 0 || math.IsNaN(l) {
			return nil, fmt.Errorf("featsel: invalid lambda %v", l)
		}
	}
	res, err := lasso.FitPathCov(cov, lambdas, lasso.DefaultOptions(lambdas[0]))
	if err != nil {
		return nil, fmt.Errorf("featsel: lasso path: %w", err)
	}
	out := make([]PathPoint, 0, len(res))
	for _, r := range res {
		pp := PathPoint{Lambda: r.Lambda, Weights: map[string]float64{}, Iterations: r.Iterations}
		for idx, b := range r.Coef {
			if b != 0 {
				name := colNames[idx]
				pp.Selected = append(pp.Selected, name)
				pp.Weights[name] = b
			}
		}
		out = append(out, pp)
	}
	return out, nil
}

// Select runs Lasso regularization at a single λ and returns the
// projection of the dataset onto the surviving features, plus the path
// point describing them. If the selection is empty, the dataset is
// returned unchanged with an empty path point and ErrEmptySelection.
func Select(ds *aggregate.Dataset, lambda float64) (*aggregate.Dataset, PathPoint, error) {
	pts, err := Path(ds, []float64{lambda})
	if err != nil {
		return nil, PathPoint{}, err
	}
	pp := pts[0]
	if pp.NumSelected() == 0 {
		return ds, pp, ErrEmptySelection
	}
	proj, err := ds.Project(pp.Selected)
	if err != nil {
		return nil, pp, err
	}
	return proj, pp, nil
}

// ErrEmptySelection is returned by Select when λ kills every feature.
var ErrEmptySelection = fmt.Errorf("featsel: lambda removed every feature")
