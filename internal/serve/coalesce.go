package serve

// This file is PR 9's adaptive cross-shard batch coalescing: the
// stealing side of dispatchOnce, split out so the dispatch loop reads
// as the common path and the thief protocol stays in one place. See
// CoalescePolicy (options.go) for the configuration contract.

// steal extends a below-MinBatch take with the pending queues of sh's
// ring neighbors (own+1, own+2, …), returning the extended segment
// list and the new total. Each steal try-locks the victim's
// dispatchMu — the caller MUST hold the thief's own dispatchMu and
// MUST keep every victim's dispatchMu (via unlockVictims) until the
// merged batch is delivered: a busy victim is simply skipped (the
// thief never blocks behind a slow neighbor), and a robbed victim
// cannot start a competing batch over the same sessions, so
// per-session estimate order is preserved. The only blocking
// dispatchMu acquisitions anywhere are a dispatcher taking its own
// and a migration taking the source's (neither holds another
// dispatchMu while blocking), so the try-locks cannot deadlock. Under
// WithManualDispatch the whole dance runs on the single flushing
// goroutine in ring order — deterministic, so fleetsim replays it
// byte-identically.
func (s *Service) steal(sh *shard, segs []segment, total int, pol CoalescePolicy) ([]segment, int) {
	own := total
	for off := 1; off < len(s.shards) && total < pol.MinBatch; off++ {
		if pol.MaxBatch > 0 && total >= pol.MaxBatch {
			break
		}
		v := s.shards[(sh.idx+off)%len(s.shards)]
		if !v.dispatchMu.TryLock() {
			continue
		}
		limit := 0
		if pol.MaxBatch > 0 {
			limit = pol.MaxBatch - total
		}
		rows := s.take(v, limit)
		if len(rows) == 0 {
			v.dispatchMu.Unlock()
			continue
		}
		segs = append(segs, segment{v, rows})
		total += len(rows)
	}
	if len(segs) > 1 {
		s.coalBatches.Add(1)
		s.coalWindows.Add(uint64(total - own))
	}
	return segs, total
}

// unlockVictims releases the dispatch mutexes steal acquired (every
// segment after the thief's own first one).
func unlockVictims(segs []segment) {
	for _, seg := range segs[1:] {
		seg.sh.dispatchMu.Unlock()
	}
}
