package serve

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/ml/modelio"
	"repro/internal/monitor"
	"repro/internal/randx"
)

// HTTPSourceConfig shapes an HTTPModelSource. The failover fields
// (CacheFile, Backoff, BreakerThreshold, RNG, Clock) are passed through
// to the embedded FailoverSource — see FailoverConfig for their
// semantics.
type HTTPSourceConfig struct {
	// Client is the HTTP client used for registry requests (default
	// http.DefaultClient; give it a timeout in production — a poll that
	// hangs holds the refresh ticker, not the serving hot path, but it
	// still delays reconvergence).
	Client *http.Client
	// MaxBytes caps the accepted envelope size (default 64 MiB) so a
	// misbehaving registry cannot balloon the node's memory.
	MaxBytes int64

	// Failover knobs, passed through to the FailoverSource.
	CacheFile        string
	Backoff          monitor.Backoff
	BreakerThreshold int
	RNG              *randx.Source
	Clock            func() time.Time
}

// HTTPModelSource pulls deployment envelopes from a model registry
// (internal/registry, cmd/fmr) over HTTP with conditional GETs: every
// poll sends If-None-Match with the last seen ETag, so an unchanged
// model costs one 304 round-trip and no body, and the same *Deployment
// pointer is handed back — the Service's refresh tick stays a no-op.
//
// The embedded FailoverSource supplies the robustness contract: when
// the registry is unreachable or returns garbage the node keeps
// serving the last-good deployment (persisted to CacheFile across
// restarts), staleness is surfaced through SourceStatus/Stats, and a
// circuit breaker probes a dead registry on a backoff schedule instead
// of hammering it on every refresh tick.
type HTTPModelSource struct {
	*FailoverSource
	f *httpFetcher
}

// NewHTTPModelSource builds a registry-backed model source polling url
// (the registry base, e.g. "http://10.0.0.9:7071" — the /v1/model path
// is appended).
func NewHTTPModelSource(url string, cfg HTTPSourceConfig) *HTTPModelSource {
	f := newHTTPFetcher(url, cfg.Client, cfg.MaxBytes)
	fo := NewFailoverSource(f, FailoverConfig{
		CacheFile:        cfg.CacheFile,
		Backoff:          cfg.Backoff,
		BreakerThreshold: cfg.BreakerThreshold,
		RNG:              cfg.RNG,
		Clock:            cfg.Clock,
	})
	return &HTTPModelSource{FailoverSource: fo, f: f}
}

// ETag returns the entity tag of the last successfully fetched
// envelope — what a node heartbeat reports so the registry's health
// view can tell which nodes have converged to the current model.
func (s *HTTPModelSource) ETag() string {
	s.f.mu.Lock()
	defer s.f.mu.Unlock()
	return s.f.etag
}

// SourceStatus implements StatusSource, adding the protocol-level ETag
// to the embedded FailoverSource's view.
func (s *HTTPModelSource) SourceStatus() SourceStatus {
	st := s.FailoverSource.SourceStatus()
	st.ETag = s.ETag()
	return st
}

// httpFetcher is the origin behind an HTTPModelSource: one conditional
// GET per call, ETag state, envelope parsing. Failure handling lives a
// layer up in the FailoverSource.
type httpFetcher struct {
	url      string
	hc       *http.Client
	maxBytes int64

	mu   sync.Mutex
	etag string
	cur  *Deployment
}

func newHTTPFetcher(url string, hc *http.Client, maxBytes int64) *httpFetcher {
	if hc == nil {
		hc = http.DefaultClient
	}
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	return &httpFetcher{
		url:      strings.TrimRight(url, "/") + "/v1/model",
		hc:       hc,
		maxBytes: maxBytes,
	}
}

// Deployment implements ModelSource: a conditional GET against the
// registry. 304 returns the previously parsed deployment (same
// pointer); 200 parses and remembers the new envelope; anything else
// is an error for the FailoverSource to absorb.
func (f *httpFetcher) Deployment(ctx context.Context) (*Deployment, error) {
	f.mu.Lock()
	etag, cur := f.etag, f.cur
	f.mu.Unlock()

	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.url, nil)
	if err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	if etag != "" && cur != nil {
		req.Header.Set("If-None-Match", etag)
	}
	resp, err := f.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("registry: GET %s: %w", f.url, err)
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
	}()

	switch resp.StatusCode {
	case http.StatusNotModified:
		return cur, nil
	case http.StatusOK:
		// fall through to parse
	default:
		return nil, fmt.Errorf("registry: GET %s: unexpected status %s", f.url, resp.Status)
	}

	body, err := io.ReadAll(io.LimitReader(resp.Body, f.maxBytes+1))
	if err != nil {
		return nil, fmt.Errorf("registry: reading envelope: %w", err)
	}
	if int64(len(body)) > f.maxBytes {
		return nil, fmt.Errorf("registry: envelope exceeds %d bytes", f.maxBytes)
	}
	m, meta, err := modelio.LoadWithMeta(bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("registry: bad envelope: %w", err)
	}
	dep := &Deployment{Model: m, Name: m.Name()}
	if meta != nil {
		dep.Features = meta.Features
		if meta.Aggregation != nil {
			dep.Aggregation = *meta.Aggregation
		}
	}
	f.mu.Lock()
	f.etag = resp.Header.Get("ETag")
	f.cur = dep
	f.mu.Unlock()
	return dep, nil
}
