package serve

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/aggregate"
	"repro/internal/trace"
)

// SessionOption configures one session.
type SessionOption func(*Session)

// OnEstimate registers a per-session estimate consumer, invoked from
// the dispatch goroutine in emission order. It must be fast and must
// not call back into the service's Flush or Close.
func OnEstimate(fn EstimateFunc) SessionOption {
	return func(ss *Session) { ss.onEstimate = fn }
}

// WithSessionPriority sets the session's load-shedding priority
// (default 0): under a ShedPolicy, sessions whose priority is below
// the policy's MinPriority floor have their completed windows shed
// while their shard is past the depth threshold; sessions at or above
// the floor are never shed. Priority has no effect without a
// ShedPolicy.
func WithSessionPriority(p int) SessionOption {
	return func(ss *Session) { ss.priority = p }
}

// Session is one monitored client inside a Service: it owns the
// client's LiveAggregator and alert state. Push is safe for one
// producer goroutine per session (the FMS connection handler, or a
// local sampling loop); the accessor methods are safe for concurrent
// use with Push.
type Session struct {
	svc *Service
	// home is the shard the session currently lives on. It only moves
	// under BOTH shard locks (placement migration), and every reader
	// that needs a stable home re-checks the pointer under the shard
	// lock it acquired — see enqueue and removeSession.
	home       atomic.Pointer[shard]
	id         string
	onEstimate EstimateFunc
	// priority orders the session for load shedding (WithShedPolicy):
	// lower-priority sessions are shed first. Immutable after
	// StartSession.
	priority int

	// lastActive is the UnixNano timestamp of the session's latest
	// activity (push, flush, estimate delivery); the idle-TTL sweep
	// evicts sessions whose stamp falls behind the TTL.
	lastActive atomic.Int64

	// pendingWindows counts this session's windows that are queued or
	// in a batch being predicted (incremented at enqueue under the
	// home shard's lock, decremented after estimate delivery). The
	// idle sweep spares any session with a nonzero count, no matter
	// which shard's queue — or which thief's merged batch — currently
	// carries the windows.
	pendingWindows atomic.Int64

	mu     sync.Mutex
	la     *aggregate.LiveAggregator
	closed bool

	estMu    sync.Mutex
	last     Estimate
	hasLast  bool
	belowThr bool // alert armed/disarmed state (edge-triggered alerts)
	count    uint64
}

// newSession builds a session with its own live aggregator.
func newSession(s *Service, sh *shard, id string, opts ...SessionOption) (*Session, error) {
	la, err := aggregate.NewLiveAggregator(s.agg)
	if err != nil {
		return nil, err
	}
	ss := &Session{svc: s, id: id, la: la}
	ss.home.Store(sh)
	ss.touch()
	for _, o := range opts {
		o(ss)
	}
	return ss, nil
}

// touch refreshes the idle-TTL activity stamp (on the service clock, so
// a virtual-time harness controls eviction).
func (ss *Session) touch() { ss.lastActive.Store(ss.svc.now().UnixNano()) }

// ID returns the session's client id.
func (ss *Session) ID() string { return ss.id }

// Push feeds one datapoint. When the datapoint completes an aggregation
// window, the window's feature row is queued for the next prediction
// batch. Out-of-order timestamps (Tgen going backwards) are treated as
// a restart of the monitored system, exactly like the training-side
// aggregation.
func (ss *Session) Push(d trace.Datapoint) error {
	ss.touch()
	ss.mu.Lock()
	if ss.closed {
		ss.mu.Unlock()
		return ErrSessionClosed
	}
	row, tgen, ok := ss.la.Push(d)
	ss.mu.Unlock()
	if !ok {
		return nil
	}
	return ss.svc.enqueue(ss, tgen, row, false)
}

// Flush queues the current (incomplete) window, if any, for prediction
// without resetting the aggregator — the "give me an estimate now" path
// for windows still filling up.
func (ss *Session) Flush() error {
	ss.touch()
	ss.mu.Lock()
	if ss.closed {
		ss.mu.Unlock()
		return ErrSessionClosed
	}
	row, tgen, ok := ss.la.Flush()
	ss.mu.Unlock()
	if !ok {
		return nil
	}
	return ss.svc.enqueue(ss, tgen, row, false)
}

// EndRun marks the end of the client's current run (a fail event, or a
// deliberate restart such as a rejuvenation action): the final partial
// window is still predicted, then the aggregator and the alert state
// reset for the next run. The alert re-arm rides with the final
// window's delivery — resetting earlier would let that (typically low)
// estimate re-fire an alert the run already raised, and would leak its
// below-threshold state into the next run.
func (ss *Session) EndRun() error {
	ss.touch()
	ss.mu.Lock()
	if ss.closed {
		ss.mu.Unlock()
		return ErrSessionClosed
	}
	row, tgen, ok := ss.la.Flush()
	ss.la.Reset()
	ss.mu.Unlock()
	if !ok {
		ss.resetAlert()
		return nil
	}
	if err := ss.svc.enqueue(ss, tgen, row, true); err != nil {
		ss.resetAlert()
		return err
	}
	return nil
}

// resetAlert re-arms the edge-triggered alert for the next run.
func (ss *Session) resetAlert() {
	ss.estMu.Lock()
	ss.belowThr = false
	ss.estMu.Unlock()
}

// Reset discards the partially filled window and re-arms the alert
// state without emitting anything — for when the monitored system was
// just restarted (e.g. by a rejuvenation action) and the buffered
// datapoints describe the old incarnation.
func (ss *Session) Reset() {
	ss.touch()
	ss.mu.Lock()
	ss.la.Reset()
	ss.mu.Unlock()
	ss.resetAlert()
}

// Latest returns the most recent estimate, if any.
func (ss *Session) Latest() (Estimate, bool) {
	ss.estMu.Lock()
	defer ss.estMu.Unlock()
	return ss.last, ss.hasLast
}

// Count returns how many estimates this session has received.
func (ss *Session) Count() uint64 {
	ss.estMu.Lock()
	defer ss.estMu.Unlock()
	return ss.count
}

// record stores an estimate and reports whether it crossed the alert
// threshold downward (edge-triggered: the alert re-arms only after the
// prediction recovers above the threshold or the run ends).
func (ss *Session) record(est Estimate, threshold float64) (crossed bool) {
	ss.touch()
	ss.estMu.Lock()
	defer ss.estMu.Unlock()
	ss.last = est
	ss.hasLast = true
	ss.count++
	if threshold <= 0 || math.IsNaN(est.RTTF) {
		return false
	}
	below := est.RTTF >= 0 && est.RTTF < threshold
	crossed = below && !ss.belowThr
	ss.belowThr = below
	return crossed
}

// Close detaches the session from the service; in-flight windows are
// still predicted, further pushes fail with ErrSessionClosed.
func (ss *Session) Close() error {
	ss.markClosed()
	ss.svc.removeSession(ss)
	return nil
}

// markClosed flips the closed flag without detaching.
func (ss *Session) markClosed() {
	ss.mu.Lock()
	ss.closed = true
	ss.mu.Unlock()
}
