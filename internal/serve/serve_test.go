package serve

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/aggregate"
	"repro/internal/ml"
	"repro/internal/trace"
)

// stubModel is a deterministic ml.Regressor: it returns base plus the
// sum of its inputs, so tests can verify both the projection and which
// registry version produced an estimate.
type stubModel struct {
	base float64
}

func (m *stubModel) Name() string                     { return "stub" }
func (m *stubModel) Fit([][]float64, []float64) error { return nil }
func (m *stubModel) Predict(x []float64) float64 {
	s := m.base
	for _, v := range x {
		s += v
	}
	return s
}

var _ ml.Regressor = (*stubModel)(nil)

// rawAgg is a minimal windowing config: 14 raw feature columns, no
// derived metrics, 10-second windows.
func rawAgg() aggregate.Config {
	return aggregate.Config{WindowSec: 10}
}

// dp builds a datapoint with the given uptime and num_threads value.
func dp(tgen, threads float64) trace.Datapoint {
	var d trace.Datapoint
	d.Tgen = tgen
	d.Features[trace.NumThreads] = threads
	return d
}

// collectSvc builds a service around a stub deployment and returns it
// with a slice collecting every estimate (Flush before reading).
func collectSvc(t *testing.T, dep *Deployment, opts ...Option) (*Service, *estimates) {
	t.Helper()
	est := &estimates{}
	opts = append(opts, WithDeployment(dep), WithEstimateFunc(est.add))
	svc, err := New(context.Background(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	return svc, est
}

// estimates is a concurrency-safe estimate recorder.
type estimates struct {
	mu sync.Mutex
	es []Estimate
}

func (e *estimates) add(est Estimate) {
	e.mu.Lock()
	e.es = append(e.es, est)
	e.mu.Unlock()
}

func (e *estimates) all() []Estimate {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Estimate(nil), e.es...)
}

func TestServiceBasicFlow(t *testing.T) {
	dep := &Deployment{Model: &stubModel{base: 100}, Name: "stub", Aggregation: rawAgg()}
	svc, est := collectSvc(t, dep)

	if svc.ModelVersion() != 1 {
		t.Fatalf("initial version %d, want 1", svc.ModelVersion())
	}
	if got := len(svc.ColNames()); got != trace.NumFeatures {
		t.Fatalf("layout has %d columns, want %d", got, trace.NumFeatures)
	}

	ss, err := svc.StartSession("vm-1")
	if err != nil {
		t.Fatal(err)
	}
	// Window [0,10) holds threads 2 and 4 (mean 3); Tgen=12 completes it.
	for _, d := range []trace.Datapoint{dp(1, 2), dp(5, 4), dp(12, 8)} {
		if err := ss.Push(d); err != nil {
			t.Fatal(err)
		}
	}
	svc.Flush()
	got := est.all()
	if len(got) != 1 {
		t.Fatalf("%d estimates, want 1", len(got))
	}
	e := got[0]
	if e.SessionID != "vm-1" || e.ModelVersion != 1 || e.ModelName != "stub" {
		t.Fatalf("bad estimate identity: %+v", e)
	}
	if want := 100.0 + 3; e.RTTF != want {
		t.Fatalf("RTTF %v, want %v (mean of window)", e.RTTF, want)
	}
	if want := 3.0; e.Tgen != want {
		t.Fatalf("Tgen %v, want %v", e.Tgen, want)
	}
	if last, ok := ss.Latest(); !ok || last != e {
		t.Fatalf("Latest() = %+v, %v", last, ok)
	}

	// EndRun predicts the final partial window (threads 8 at Tgen 12).
	if err := ss.EndRun(); err != nil {
		t.Fatal(err)
	}
	svc.Flush()
	got = est.all()
	if len(got) != 2 {
		t.Fatalf("%d estimates after EndRun, want 2", len(got))
	}
	if want := 100.0 + 8; got[1].RTTF != want {
		t.Fatalf("final-window RTTF %v, want %v", got[1].RTTF, want)
	}
	if st := svc.Stats(); st.Predictions != 2 || st.Sessions != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestServiceProjection(t *testing.T) {
	names := trace.FeatureNames()
	// The model consumes two columns, deliberately out of layout order.
	dep := &Deployment{
		Model:       &stubModel{},
		Aggregation: rawAgg(),
		Features:    []string{names[trace.MemUsed], names[trace.NumThreads]},
	}
	svc, est := collectSvc(t, dep)
	ss, err := svc.StartSession("s")
	if err != nil {
		t.Fatal(err)
	}
	var d trace.Datapoint
	d.Tgen = 1
	d.Features[trace.NumThreads] = 7
	d.Features[trace.MemUsed] = 11
	d.Features[trace.CPUIdle] = 999 // not selected: must not leak in
	if err := ss.Push(d); err != nil {
		t.Fatal(err)
	}
	if err := ss.Flush(); err != nil { // predict the incomplete window
		t.Fatal(err)
	}
	svc.Flush()
	got := est.all()
	if len(got) != 1 {
		t.Fatalf("%d estimates, want 1", len(got))
	}
	if want := 7.0 + 11; got[0].RTTF != want {
		t.Fatalf("projected RTTF %v, want %v", got[0].RTTF, want)
	}
}

func TestServiceDeployValidation(t *testing.T) {
	dep := &Deployment{Model: &stubModel{}, Aggregation: rawAgg()}
	svc, _ := collectSvc(t, dep)

	other := rawAgg()
	other.WindowSec = 99
	if _, err := svc.Deploy(&Deployment{Model: &stubModel{}, Aggregation: other}); !errors.Is(err, ErrAggregationMismatch) {
		t.Fatalf("mismatched aggregation: %v", err)
	}
	bad := &Deployment{Model: &stubModel{}, Aggregation: rawAgg(), Features: []string{"no_such_column"}}
	if _, err := svc.Deploy(bad); !errors.Is(err, ErrUnknownFeature) {
		t.Fatalf("unknown feature: %v", err)
	}
	if _, err := svc.Deploy(nil); !errors.Is(err, ErrNoModel) {
		t.Fatalf("nil deployment: %v", err)
	}
	v, err := svc.Deploy(&Deployment{Model: &stubModel{base: 1}, Aggregation: rawAgg()})
	if err != nil || v != 2 {
		t.Fatalf("valid redeploy: v=%d err=%v", v, err)
	}
}

func TestServiceHotSwap(t *testing.T) {
	dep := &Deployment{Model: &stubModel{base: 1000}, Aggregation: rawAgg()}
	svc, est := collectSvc(t, dep)
	ss, err := svc.StartSession("s")
	if err != nil {
		t.Fatal(err)
	}
	push := func(tgen float64) {
		t.Helper()
		if err := ss.Push(dp(tgen, 0)); err != nil {
			t.Fatal(err)
		}
	}
	push(1)
	push(11) // completes window 0 under v1
	svc.Flush()

	v, err := svc.Deploy(&Deployment{Model: &stubModel{base: 2000}, Aggregation: rawAgg()})
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 || svc.ModelVersion() != 2 {
		t.Fatalf("version %d / %d, want 2", v, svc.ModelVersion())
	}
	push(21) // completes window 1 — enqueued after Deploy returned
	svc.Flush()

	got := est.all()
	if len(got) != 2 {
		t.Fatalf("%d estimates, want 2", len(got))
	}
	if got[0].ModelVersion != 1 || got[0].RTTF != 1000 {
		t.Fatalf("pre-swap estimate %+v", got[0])
	}
	if got[1].ModelVersion != 2 || got[1].RTTF != 2000 {
		t.Fatalf("post-swap estimate %+v used a stale model", got[1])
	}
}

func TestServiceAlertsEdgeTriggered(t *testing.T) {
	// The stub predicts base+sum; drive RTTF via the num_threads value.
	dep := &Deployment{Model: &stubModel{}, Aggregation: rawAgg()}
	var alerts []Alert
	var mu sync.Mutex
	est := &estimates{}
	svc, err := New(context.Background(),
		WithDeployment(dep),
		WithEstimateFunc(est.add),
		WithAlertFunc(50, func(a Alert) {
			mu.Lock()
			alerts = append(alerts, a)
			mu.Unlock()
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ss, err := svc.StartSession("s")
	if err != nil {
		t.Fatal(err)
	}
	// One datapoint per window: predictions 100, 40, 30, 120, 20.
	values := []float64{100, 40, 30, 120, 20}
	for i, v := range values {
		if err := ss.Push(dp(float64(i*10)+1, v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ss.Flush(); err != nil {
		t.Fatal(err)
	}
	svc.Flush()
	if n := len(est.all()); n != len(values) {
		t.Fatalf("%d estimates, want %d", n, len(values))
	}
	mu.Lock()
	defer mu.Unlock()
	// 40 crosses down (alert), 30 stays below (no alert), 120 re-arms,
	// 20 crosses down again (alert).
	if len(alerts) != 2 {
		t.Fatalf("%d alerts, want 2: %+v", len(alerts), alerts)
	}
	if alerts[0].RTTF != 40 || alerts[1].RTTF != 20 {
		t.Fatalf("alerts fired at %v and %v, want 40 and 20", alerts[0].RTTF, alerts[1].RTTF)
	}
	if alerts[0].Threshold != 50 {
		t.Fatalf("alert threshold %v, want 50", alerts[0].Threshold)
	}
	if st := svc.Stats(); st.Alerts != 2 {
		t.Fatalf("stats alerts %d, want 2", st.Alerts)
	}
}

func TestServiceSessionLimits(t *testing.T) {
	dep := &Deployment{Model: &stubModel{}, Aggregation: rawAgg()}
	svc, _ := collectSvc(t, dep, WithMaxSessions(2))
	if _, err := svc.StartSession("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.StartSession("a"); !errors.Is(err, ErrDuplicateSession) {
		t.Fatalf("duplicate id: %v", err)
	}
	if _, err := svc.StartSession("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.StartSession("c"); !errors.Is(err, ErrTooManySessions) {
		t.Fatalf("over limit: %v", err)
	}
	// Closing a session frees its slot.
	a, _ := svc.Session("a")
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Push(dp(1, 0)); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("push on closed session: %v", err)
	}
	if _, err := svc.StartSession("c"); err != nil {
		t.Fatalf("slot not freed: %v", err)
	}
}

func TestServiceNoModel(t *testing.T) {
	if _, err := New(context.Background()); !errors.Is(err, ErrNoModel) {
		t.Fatalf("New without model: %v", err)
	}
}

func TestServiceModelSourceAndRefresh(t *testing.T) {
	base := 1.0
	src := ModelSourceFunc(func(context.Context) (*Deployment, error) {
		d := &Deployment{Model: &stubModel{base: base}, Aggregation: rawAgg()}
		return d, nil
	})
	svc, err := New(context.Background(), WithModelSource(src))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if svc.ModelVersion() != 1 {
		t.Fatalf("initial version %d", svc.ModelVersion())
	}
	base = 2
	v, err := svc.Refresh(context.Background())
	if err != nil || v != 2 {
		t.Fatalf("refresh: v=%d err=%v", v, err)
	}
}

func TestServiceContextCancelStopsEverything(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	dep := &Deployment{Model: &stubModel{}, Aggregation: rawAgg()}
	est := &estimates{}
	svc, err := New(ctx, WithDeployment(dep), WithEstimateFunc(est.add))
	if err != nil {
		t.Fatal(err)
	}
	ss, err := svc.StartSession("s")
	if err != nil {
		t.Fatal(err)
	}
	// A window completed before cancellation must still be predicted
	// (clean shutdown drains the queue).
	if err := ss.Push(dp(1, 5)); err != nil {
		t.Fatal(err)
	}
	if err := ss.Push(dp(11, 5)); err != nil {
		t.Fatal(err)
	}
	cancel()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := ss.Push(dp(21, 5)); err != nil {
			if !errors.Is(err, ErrSessionClosed) && !errors.Is(err, ErrServiceClosed) {
				t.Fatalf("unexpected push error: %v", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("session still accepting pushes after cancel")
		}
		time.Sleep(time.Millisecond)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.StartSession("late"); !errors.Is(err, ErrServiceClosed) {
		t.Fatalf("StartSession after cancel: %v", err)
	}
	if n := len(est.all()); n < 1 {
		t.Fatal("queued window was dropped on shutdown")
	}
}

func TestSessionResetDiscardsWindow(t *testing.T) {
	dep := &Deployment{Model: &stubModel{}, Aggregation: rawAgg()}
	svc, est := collectSvc(t, dep)
	ss, err := svc.StartSession("s")
	if err != nil {
		t.Fatal(err)
	}
	if err := ss.Push(dp(1, 123)); err != nil {
		t.Fatal(err)
	}
	ss.Reset()
	if err := ss.Flush(); err != nil {
		t.Fatal(err)
	}
	svc.Flush()
	if n := len(est.all()); n != 0 {
		t.Fatalf("%d estimates after Reset, want 0", n)
	}
}

func TestEstimateNaNOnDimensionMismatch(t *testing.T) {
	// A model that consumes the full layout but returns NaN must not
	// trip the alert machinery.
	nan := math.NaN()
	dep := &Deployment{Model: &stubModel{base: nan}, Aggregation: rawAgg()}
	var fired atomic.Bool
	svc, err := New(context.Background(), WithDeployment(dep),
		WithAlertFunc(50, func(Alert) { fired.Store(true) }))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ss, _ := svc.StartSession("s")
	if err := ss.Push(dp(1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := ss.Flush(); err != nil {
		t.Fatal(err)
	}
	svc.Flush()
	if fired.Load() {
		t.Fatal("NaN prediction raised an alert")
	}
}

// TestEndRunAlertRearmOrdering pins the alert semantics around run
// boundaries: the final (typically low) partial window of a failing run
// must not duplicate the run's already-fired alert, and the re-arm must
// land after that final estimate so the next run can alert again.
func TestEndRunAlertRearmOrdering(t *testing.T) {
	dep := &Deployment{Model: &stubModel{}, Aggregation: rawAgg()}
	var mu sync.Mutex
	var alerts []Alert
	svc, err := New(context.Background(),
		WithDeployment(dep),
		WithAlertFunc(50, func(a Alert) {
			mu.Lock()
			alerts = append(alerts, a)
			mu.Unlock()
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ss, err := svc.StartSession("s")
	if err != nil {
		t.Fatal(err)
	}

	// Run 1: 100 → 40 (alert) → partial window 20 flushed by EndRun.
	// The 20 continues the same decline: no second alert.
	for i, v := range []float64{100, 40} {
		if err := ss.Push(dp(float64(i*10)+1, v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ss.Push(dp(21, 20)); err != nil { // starts window 2
		t.Fatal(err)
	}
	if err := ss.EndRun(); err != nil {
		t.Fatal(err)
	}
	svc.Flush()
	mu.Lock()
	n := len(alerts)
	mu.Unlock()
	if n != 1 {
		t.Fatalf("run 1 raised %d alerts, want 1 (final window must not re-fire)", n)
	}

	// Run 2 (after the reset) goes below immediately: re-armed, one
	// fresh alert.
	if err := ss.Push(dp(1, 30)); err != nil {
		t.Fatal(err)
	}
	if err := ss.Flush(); err != nil {
		t.Fatal(err)
	}
	svc.Flush()
	mu.Lock()
	n = len(alerts)
	mu.Unlock()
	if n != 2 {
		t.Fatalf("run 2 did not re-arm: %d alerts total, want 2", n)
	}
}
