package serve

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/testutil"
)

// idsOnShard returns n distinct session ids that the service's placer
// routes onto shard idx — the deterministic way to stage a chosen
// per-shard load. The generation lives in testutil and works through
// the Placer interface, so shard_test.go's balance check and other
// packages share one implementation.
func idsOnShard(svc *Service, idx, n int) []string {
	return testutil.IDsOnShard(svc.placer.Place, len(svc.shards), idx, n)
}

// batchLog records the batchFailpoint call sequence: which shard
// dispatched, how many windows it merged.
type batchLog struct {
	mu    sync.Mutex
	calls [][2]int
}

func (l *batchLog) hook(shard, size int) {
	l.mu.Lock()
	l.calls = append(l.calls, [2]int{shard, size})
	l.mu.Unlock()
}

func (l *batchLog) snapshot() [][2]int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([][2]int(nil), l.calls...)
}

// TestCoalesceLightLoadMerges pins the light-load regime: with a few
// windows scattered across many shards and a MinBatch above the fleet
// total, one Flush produces exactly ONE PredictBatch call holding
// every window — the first non-empty shard steals all its neighbors'
// queues — and the coalesce counters account for the stolen windows
// exactly.
func TestCoalesceLightLoadMerges(t *testing.T) {
	const shards = 8
	const sessions = 24
	log := &batchLog{}
	var delivered atomic.Uint64
	svc, err := New(context.Background(),
		WithDeployment(&Deployment{Model: &stubModel{base: 1}, Name: "v1", Aggregation: rawAgg()}),
		WithShards(shards),
		WithManualDispatch(),
		WithCoalescePolicy(CoalescePolicy{MinBatch: 64}),
		WithBatchFailpoint(log.hook),
		WithEstimateFunc(func(Estimate) { delivered.Add(1) }),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// One completed window per session, spread over the shards by the
	// id hash.
	perShard := make([]int, shards)
	for i := 0; i < sessions; i++ {
		id := fmt.Sprintf("s-%03d", i)
		ss, err := svc.StartSession(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := ss.Push(dp(1, float64(i))); err != nil {
			t.Fatal(err)
		}
		if err := ss.Push(dp(11, float64(i))); err != nil {
			t.Fatal(err)
		}
		perShard[svc.shardIndex(svc.shardFor(id))]++
	}

	svc.Flush()

	calls := log.snapshot()
	if len(calls) != 1 {
		t.Fatalf("light load flushed in %d batches (%v), want exactly 1 merged batch", len(calls), calls)
	}
	thief, size := calls[0][0], calls[0][1]
	if size != sessions {
		t.Fatalf("merged batch holds %d windows, want all %d", size, sessions)
	}
	st := svc.Stats()
	if st.CoalescedBatches != 1 {
		t.Fatalf("CoalescedBatches %d, want 1", st.CoalescedBatches)
	}
	if want := uint64(sessions - perShard[thief]); st.CoalescedWindows != want {
		t.Fatalf("CoalescedWindows %d, want %d (total %d minus thief shard %d's own %d)",
			st.CoalescedWindows, want, sessions, thief, perShard[thief])
	}
	if delivered.Load() != sessions {
		t.Fatalf("%d estimates delivered, want %d", delivered.Load(), sessions)
	}
	if st.QueueDepth != 0 {
		t.Fatalf("queue depth %d after the merged flush", st.QueueDepth)
	}
	if st.LastBatchSize != sessions {
		t.Fatalf("LastBatchSize %d, want %d", st.LastBatchSize, sessions)
	}

	// Nothing left behind: a second Flush dispatches no batch.
	svc.Flush()
	if again := log.snapshot(); len(again) != 1 {
		t.Fatalf("second Flush dispatched %d extra batches", len(again)-1)
	}
}

// TestCoalesceHeavyLoadNoSteal pins the self-disabling side: when
// every shard's own queue already reaches MinBatch, no stealing
// happens — each shard dispatches its own windows in its own batch and
// the coalesce counters stay at zero.
func TestCoalesceHeavyLoadNoSteal(t *testing.T) {
	const shards = 4
	const minBatch = 3
	log := &batchLog{}
	svc, err := New(context.Background(),
		WithDeployment(&Deployment{Model: &stubModel{base: 1}, Name: "v1", Aggregation: rawAgg()}),
		WithShards(shards),
		WithManualDispatch(),
		WithCoalescePolicy(CoalescePolicy{MinBatch: minBatch}),
		WithBatchFailpoint(log.hook),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// Exactly MinBatch windows on every shard.
	for idx := 0; idx < shards; idx++ {
		for _, id := range idsOnShard(svc, idx, minBatch) {
			ss, err := svc.StartSession(id)
			if err != nil {
				t.Fatal(err)
			}
			if err := ss.Push(dp(1, 1)); err != nil {
				t.Fatal(err)
			}
			if err := ss.Push(dp(11, 1)); err != nil {
				t.Fatal(err)
			}
		}
	}

	svc.Flush()

	calls := log.snapshot()
	if len(calls) != shards {
		t.Fatalf("heavy load flushed in %d batches (%v), want one per shard (%d)", len(calls), calls, shards)
	}
	for i, c := range calls {
		if c[0] != i || c[1] != minBatch {
			t.Fatalf("batch %d came from shard %d with %d windows, want shard %d with %d", i, c[0], c[1], i, minBatch)
		}
	}
	st := svc.Stats()
	if st.CoalescedBatches != 0 || st.CoalescedWindows != 0 {
		t.Fatalf("coalesce counters %d/%d under heavy load, want 0/0", st.CoalescedBatches, st.CoalescedWindows)
	}
}

// TestCoalesceMaxBatchSplit pins the cap semantics: a steal stops at
// MaxBatch, taking only the oldest prefix of the victim's queue; the
// remainder stays queued in order and is dispatched by the victim
// itself, so per-session estimate order survives the split.
func TestCoalesceMaxBatchSplit(t *testing.T) {
	const shards = 2
	log := &batchLog{}
	var mu sync.Mutex
	order := map[string][]float64{}
	svc, err := New(context.Background(),
		WithDeployment(&Deployment{Model: &stubModel{base: 1}, Name: "v1", Aggregation: rawAgg()}),
		WithShards(shards),
		WithManualDispatch(),
		WithCoalescePolicy(CoalescePolicy{MinBatch: 4, MaxBatch: 4}),
		WithBatchFailpoint(log.hook),
		WithEstimateFunc(func(e Estimate) {
			mu.Lock()
			order[e.SessionID] = append(order[e.SessionID], e.Tgen)
			mu.Unlock()
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// Shard 0 holds one window; shard 1 holds five (one session with
	// five consecutive windows, so the split must preserve its order).
	owner := idsOnShard(svc, 0, 1)[0]
	ss0, err := svc.StartSession(owner)
	if err != nil {
		t.Fatal(err)
	}
	if err := ss0.Push(dp(1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := ss0.Push(dp(11, 1)); err != nil {
		t.Fatal(err)
	}
	victim := idsOnShard(svc, 1, 1)[0]
	ss1, err := svc.StartSession(victim)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w <= 5; w++ {
		if err := ss1.Push(dp(float64(w*10+1), 1)); err != nil {
			t.Fatal(err)
		}
	}

	svc.Flush()

	want := [][2]int{{0, 4}, {1, 2}}
	if calls := log.snapshot(); !reflect.DeepEqual(calls, want) {
		t.Fatalf("batch sequence %v, want %v (steal capped at MaxBatch, victim drains the rest)", calls, want)
	}
	st := svc.Stats()
	if st.CoalescedBatches != 1 || st.CoalescedWindows != 3 {
		t.Fatalf("coalesce counters %d/%d, want 1 batch with 3 stolen windows", st.CoalescedBatches, st.CoalescedWindows)
	}
	mu.Lock()
	got := append([]float64(nil), order[victim]...)
	mu.Unlock()
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("victim session estimates out of order: %v", got)
		}
	}
	if len(got) != 5 {
		t.Fatalf("victim session got %d estimates, want 5", len(got))
	}
}

// TestCoalesceDeterministicReplay pins the property fleetsim depends
// on: the same manual-dispatch scenario produces the byte-identical
// batch sequence on every run — steal order under Flush is a pure
// function of the queue state, not of goroutine timing.
func TestCoalesceDeterministicReplay(t *testing.T) {
	run := func() [][2]int {
		log := &batchLog{}
		svc, err := New(context.Background(),
			WithDeployment(&Deployment{Model: &stubModel{base: 1}, Name: "v1", Aggregation: rawAgg()}),
			WithShards(8),
			WithManualDispatch(),
			WithCoalescePolicy(CoalescePolicy{MinBatch: 6, MaxBatch: 8}),
			WithBatchFailpoint(log.hook),
		)
		if err != nil {
			t.Fatal(err)
		}
		defer svc.Close()
		for i := 0; i < 20; i++ {
			ss, err := svc.StartSession(fmt.Sprintf("s-%03d", i))
			if err != nil {
				t.Fatal(err)
			}
			for w := 0; w <= i%3+1; w++ {
				if err := ss.Push(dp(float64(w*10+1), float64(i))); err != nil {
					t.Fatal(err)
				}
			}
			if i%5 == 0 {
				svc.Flush()
			}
		}
		svc.Flush()
		return log.snapshot()
	}
	first := run()
	second := run()
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("replay diverged:\n  first:  %v\n  second: %v", first, second)
	}
	if len(first) == 0 {
		t.Fatal("scenario dispatched no batches — nothing was exercised")
	}
}

// TestCoalesceExactAccountingConcurrent re-proves the shed partition
// invariant with stealing in the mix: under concurrent producers,
// background dispatchers, a tight ShedPolicy, AND cross-shard
// coalescing, every completed window is still either predicted exactly
// once or shed exactly once — takes under the victim shard's own lock
// keep the depth and shed accounting exact no matter which dispatcher
// does the taking. Run under -race.
func TestCoalesceExactAccountingConcurrent(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	const (
		numSessions = 64
		windows     = 40
	)
	var estimates atomic.Uint64
	svc, err := New(ctx,
		WithDeployment(&Deployment{Model: &stubModel{base: 1}, Name: "v1", Aggregation: rawAgg()}),
		WithShards(4),
		WithShedPolicy(ShedPolicy{MaxQueueDepth: 2, MinPriority: 1}),
		WithCoalescePolicy(CoalescePolicy{MinBatch: 8}),
		WithBatchInterval(200*time.Microsecond),
		WithEstimateFunc(func(Estimate) { estimates.Add(1) }),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	var queued, shed atomic.Uint64
	var wg sync.WaitGroup
	for c := 0; c < numSessions; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			prio := c % 2
			ss, err := svc.StartSession(fmt.Sprintf("c-%03d", c), WithSessionPriority(prio))
			if err != nil {
				t.Error(err)
				return
			}
			for w := 0; w <= windows; w++ {
				err := ss.Push(dp(float64(w*10+1), float64(c)))
				switch {
				case err == nil:
					if w > 0 {
						queued.Add(1)
					}
				case errors.Is(err, ErrWindowShed):
					if prio >= 1 {
						t.Errorf("session %d at the priority floor was shed", c)
						return
					}
					shed.Add(1)
				default:
					t.Errorf("session %d: %v", c, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	svc.Flush()

	st := svc.Stats()
	if st.ShedWindows != shed.Load() {
		t.Fatalf("stats ShedWindows %d, callers saw %d ErrWindowShed", st.ShedWindows, shed.Load())
	}
	if got, want := estimates.Load(), queued.Load(); got != want {
		t.Fatalf("%d estimates for %d accepted windows with coalescing on", got, want)
	}
	if st.Predictions != estimates.Load() {
		t.Fatalf("stats predictions %d vs %d deliveries", st.Predictions, estimates.Load())
	}
	if st.QueueDepth != 0 {
		t.Fatalf("queue depth %d after drain", st.QueueDepth)
	}
}
