package serve

import (
	"fmt"

	"repro/internal/aggregate"
	"repro/internal/core"
	"repro/internal/ml"
	"repro/internal/ml/modelio"
)

// Deployment is one servable model together with everything the serving
// side needs to feed it: the column names it consumes (the
// Lasso-selected subset for reduced-family models; empty means the full
// aggregated layout) and the aggregation configuration its training
// used, so live rows are windowed exactly like the training rows.
type Deployment struct {
	// Model is the trained predictor.
	Model ml.Regressor
	// Name labels the model in estimates and logs ("svm2", ...).
	Name string
	// Features names the dataset columns the model consumes, in model
	// input order; empty means the full layout.
	Features []string
	// Aggregation is the windowing configuration live aggregators must
	// reuse.
	Aggregation aggregate.Config
}

// FromReport builds the deployment of a pipeline report's best model —
// the bridge from Pipeline.Run/Update to the serving layer. The
// report's aggregation config and, for a Lasso-family winner, the
// selected feature subset are carried along so the model deploys
// correctly without out-of-band knowledge.
func FromReport(rep *core.Report) (*Deployment, error) {
	best := rep.Best()
	if best == nil {
		return nil, ErrNoModel
	}
	dep := &Deployment{
		Model:       best.Model,
		Name:        best.Spec.Name,
		Aggregation: rep.Aggregation,
	}
	if best.Features == core.LassoParams {
		dep.Features = append([]string(nil), rep.Selection.Selected...)
	}
	return dep, nil
}

// Meta converts the deployment's serving configuration to the modelio
// metadata block, for persisting with SaveDeployment.
func (d *Deployment) Meta() *modelio.Meta {
	agg := d.Aggregation
	return &modelio.Meta{
		Features:    append([]string(nil), d.Features...),
		Aggregation: &agg,
	}
}

// modelVersion is one immutable registry entry: a deployment plus the
// projection from the service's full column layout into the model's
// input order. Entries are swapped atomically; in-flight batches keep
// predicting with the snapshot they loaded.
type modelVersion struct {
	dep     Deployment
	version uint64
	proj    []int // full-layout column indices, nil = identity
	// origin is the *Deployment this entry was built from: Refresh
	// skips the redeploy when the ModelSource hands back the same
	// pointer, so an auto-refresh ticker over an unchanged model does
	// not burn registry versions.
	origin *Deployment
}

// newModelVersion resolves the deployment's feature names against the
// service's column layout; the caller assigns the version once the
// entry is known good.
func newModelVersion(dep *Deployment, colIdx map[string]int) (*modelVersion, error) {
	mv := &modelVersion{dep: *dep, origin: dep}
	if len(dep.Features) > 0 {
		mv.proj = make([]int, len(dep.Features))
		for i, name := range dep.Features {
			j, ok := colIdx[name]
			if !ok {
				return nil, fmt.Errorf("%w: %q not in the aggregated layout", ErrUnknownFeature, name)
			}
			mv.proj[i] = j
		}
	}
	return mv, nil
}

// project maps one full-layout row into the model's input order.
func (mv *modelVersion) project(row []float64) []float64 {
	if mv.proj == nil {
		return row
	}
	out := make([]float64, len(mv.proj))
	for i, j := range mv.proj {
		out[i] = row[j]
	}
	return out
}
