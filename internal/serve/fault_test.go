package serve

import (
	"errors"
	"testing"
	"time"
)

// virtualClock is a hand-advanced time source for WithClock tests.
type virtualClock struct {
	t time.Time
}

func newVirtualClock() *virtualClock { return &virtualClock{t: time.Unix(1_000_000, 0)} }

func (c *virtualClock) Now() time.Time          { return c.t }
func (c *virtualClock) Advance(d time.Duration) { c.t = c.t.Add(d) }

// TestManualDispatchFlow pins the caller-driven mode: without a
// dispatcher goroutine, completed windows accumulate in the shard
// queues (visible in QueueDepth), an explicit Flush predicts them on
// the calling goroutine in enqueue order, and Close still drains
// whatever is queued.
func TestManualDispatchFlow(t *testing.T) {
	dep := &Deployment{Model: &stubModel{}, Name: "stub", Aggregation: rawAgg()}
	svc, est := collectSvc(t, dep, WithManualDispatch(), WithShards(2))

	var sessions []*Session
	for _, id := range []string{"a", "b", "c"} {
		ss, err := svc.StartSession(id)
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, ss)
	}
	// Each session completes one window (crossing the 10 s boundary).
	for i, ss := range sessions {
		if err := ss.Push(dp(5, float64(i))); err != nil {
			t.Fatal(err)
		}
		if err := ss.Push(dp(15, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// No dispatcher may have consumed anything.
	if got := svc.Stats().QueueDepth; got != 3 {
		t.Fatalf("QueueDepth = %d before Flush, want 3 (manual dispatch must not auto-drain)", got)
	}
	if got := len(est.all()); got != 0 {
		t.Fatalf("%d estimates before Flush, want 0", got)
	}
	svc.Flush()
	if got := len(est.all()); got != 3 {
		t.Fatalf("%d estimates after Flush, want 3", got)
	}
	if got := svc.Stats().QueueDepth; got != 0 {
		t.Fatalf("QueueDepth = %d after Flush, want 0", got)
	}

	// Close drains windows still queued at shutdown. Each push pair
	// completes two more windows per session ([10,20) and [20,30)).
	for i, ss := range sessions {
		if err := ss.Push(dp(25, float64(i))); err != nil {
			t.Fatal(err)
		}
		if err := ss.Push(dp(35, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if got := len(est.all()); got != 9 {
		t.Fatalf("%d estimates after Close, want 9 (drain-on-Close dropped windows)", got)
	}
}

// TestManualSweepVirtualClock pins the WithClock + SweepIdleNow pair:
// idle eviction follows the virtual clock exactly — advancing past the
// TTL and sweeping evicts, with the snapshot delivered once — and
// nothing is evicted by wall time.
func TestManualSweepVirtualClock(t *testing.T) {
	clock := newVirtualClock()
	var evicted []EvictedSession
	dep := &Deployment{Model: &stubModel{}, Name: "stub", Aggregation: rawAgg()}
	svc, _ := collectSvc(t, dep,
		WithManualDispatch(),
		WithShards(1),
		WithClock(clock.Now),
		WithSessionTTL(time.Minute),
		WithSessionEvictFunc(func(ev EvictedSession) { evicted = append(evicted, ev) }),
	)
	if _, err := svc.StartSession("idle"); err != nil {
		t.Fatal(err)
	}
	busy, err := svc.StartSession("busy")
	if err != nil {
		t.Fatal(err)
	}

	clock.Advance(30 * time.Second)
	if err := busy.Push(dp(1, 1)); err != nil { // re-stamps "busy" at +30s
		t.Fatal(err)
	}
	svc.SweepIdleNow() // nobody is past the TTL yet
	if len(evicted) != 0 {
		t.Fatalf("sweep at +30s evicted %v, want none", evicted)
	}
	clock.Advance(45 * time.Second) // "idle" is 75s idle, "busy" 45s
	svc.SweepIdleNow()
	if len(evicted) != 1 || evicted[0].ID != "idle" {
		t.Fatalf("sweep at +75s evicted %v, want exactly [idle]", evicted)
	}
	if got := svc.Stats().EvictedSessions; got != 1 {
		t.Fatalf("EvictedSessions = %d, want 1", got)
	}
	if _, ok := svc.Session("busy"); !ok {
		t.Fatal("busy session evicted despite activity inside the TTL")
	}
}

// TestShedByPriorityAccounting pins the per-priority shed surface:
// under a held-full queue (manual dispatch, so nothing drains), every
// shed window lands in Stats.ShedByPriority under its session's
// priority, the per-priority counts sum to ShedWindows, only
// below-floor priorities ever appear, and the WithShedFunc hook sees
// one event per drop with the right attribution.
func TestShedByPriorityAccounting(t *testing.T) {
	var events []Shed
	dep := &Deployment{Model: &stubModel{}, Name: "stub", Aggregation: rawAgg()}
	svc, _ := collectSvc(t, dep,
		WithManualDispatch(),
		WithShards(1),
		WithShedPolicy(ShedPolicy{MaxQueueDepth: 2, MinPriority: 5}),
		WithShedFunc(func(s Shed) { events = append(events, s) }),
	)
	vip, err := svc.StartSession("vip", WithSessionPriority(5))
	if err != nil {
		t.Fatal(err)
	}
	lowA, err := svc.StartSession("low-a", WithSessionPriority(1))
	if err != nil {
		t.Fatal(err)
	}
	lowB, err := svc.StartSession("low-b", WithSessionPriority(3))
	if err != nil {
		t.Fatal(err)
	}

	// Fill the queue to the threshold with the floor-priority session.
	for i := 0; i < 3; i++ {
		if err := vip.Push(dp(float64(10*i+5), 1)); err != nil {
			t.Fatalf("vip push %d: %v", i, err)
		}
	}
	// Queue depth is now 2 (two completed windows) — at the threshold.
	// Below-floor sessions shed; the floor session still queues.
	shedPushes := func(ss *Session, n int) int {
		shed := 0
		for i := 0; i < n; i++ {
			err := ss.Push(dp(float64(10*i+5), 1))
			if errors.Is(err, ErrWindowShed) {
				shed++
			} else if err != nil {
				t.Fatalf("push: %v", err)
			}
		}
		return shed
	}
	gotA := shedPushes(lowA, 4) // 3 completed windows, all shed
	gotB := shedPushes(lowB, 3) // 2 completed windows, all shed
	if gotA != 3 || gotB != 2 {
		t.Fatalf("shed counts %d/%d, want 3/2", gotA, gotB)
	}
	if err := vip.Push(dp(35, 1)); err != nil {
		t.Fatalf("floor-priority session shed: %v", err)
	}

	st := svc.Stats()
	if st.ShedWindows != 5 {
		t.Fatalf("ShedWindows = %d, want 5", st.ShedWindows)
	}
	var sum uint64
	for prio, n := range st.ShedByPriority {
		if prio >= 5 {
			t.Fatalf("priority %d (at/above the floor) appears in ShedByPriority", prio)
		}
		sum += n
	}
	if sum != st.ShedWindows {
		t.Fatalf("ShedByPriority sums to %d, ShedWindows is %d", sum, st.ShedWindows)
	}
	if st.ShedByPriority[1] != 3 || st.ShedByPriority[3] != 2 {
		t.Fatalf("ShedByPriority = %v, want {1:3, 3:2}", st.ShedByPriority)
	}
	if len(events) != 5 {
		t.Fatalf("%d shed events, want 5", len(events))
	}
	for _, ev := range events {
		if ev.Priority >= 5 {
			t.Fatalf("shed event for priority %d (at/above floor): %+v", ev.Priority, ev)
		}
		if ev.QueueDepth < 2 {
			t.Fatalf("shed event below the depth threshold: %+v", ev)
		}
		if (ev.SessionID == "low-a") != (ev.Priority == 1) {
			t.Fatalf("shed event misattributed: %+v", ev)
		}
	}
}

// TestSetShedPolicyHotSwap pins the dynamic shed actuator: swapping the
// policy at runtime changes which sessions shed from the next completed
// window on, and the accessor reflects the live policy.
func TestSetShedPolicyHotSwap(t *testing.T) {
	dep := &Deployment{Model: &stubModel{}, Name: "stub", Aggregation: rawAgg()}
	svc, _ := collectSvc(t, dep,
		WithManualDispatch(),
		WithShards(1),
		WithShedPolicy(ShedPolicy{MaxQueueDepth: 2, MinPriority: 5}),
	)
	if got := svc.ShedPolicy(); got.MaxQueueDepth != 2 || got.MinPriority != 5 {
		t.Fatalf("initial policy = %+v, want the WithShedPolicy one", got)
	}
	vip, err := svc.StartSession("vip", WithSessionPriority(5))
	if err != nil {
		t.Fatal(err)
	}
	low, err := svc.StartSession("low", WithSessionPriority(1))
	if err != nil {
		t.Fatal(err)
	}
	// Hold the queue at the threshold so below-floor pushes shed.
	for i := 0; i < 3; i++ {
		if err := vip.Push(dp(float64(10*i+5), 1)); err != nil {
			t.Fatalf("vip push %d: %v", i, err)
		}
	}
	if err := low.Push(dp(5, 1)); err != nil {
		t.Fatalf("priming push: %v", err) // first push opens the window
	}
	if err := low.Push(dp(15, 1)); !errors.Is(err, ErrWindowShed) {
		t.Fatalf("below-floor push under pressure: %v, want ErrWindowShed", err)
	}

	// Supervisor relaxes the policy: the same session's next window
	// queues instead of shedding.
	if err := svc.SetShedPolicy(ShedPolicy{}); err != nil {
		t.Fatal(err)
	}
	if err := low.Push(dp(25, 1)); err != nil {
		t.Fatalf("push after relaxing the policy: %v", err)
	}

	// Supervisor raises the floor above every session: even the
	// formerly protected one sheds now.
	if err := svc.SetShedPolicy(ShedPolicy{MaxQueueDepth: 2, MinPriority: 6}); err != nil {
		t.Fatal(err)
	}
	if err := vip.Push(dp(45, 1)); !errors.Is(err, ErrWindowShed) {
		t.Fatalf("push after raising the floor: %v, want ErrWindowShed", err)
	}
	if got := svc.ShedPolicy(); got.MinPriority != 6 {
		t.Fatalf("live policy = %+v, want the raised floor", got)
	}
	if err := svc.SetShedPolicy(ShedPolicy{MaxQueueDepth: -1}); err == nil {
		t.Fatal("negative policy accepted")
	}
}
