package serve

import (
	"time"
)

// CoalescePolicy is the adaptive cross-shard batch-coalescing
// configuration: a dispatcher whose freshly-taken queue is smaller
// than MinBatch steals its neighbors' pending windows (ring order,
// try-lock only — it never blocks behind a busy neighbor) and merges
// them into the same PredictBatch call, so light fleet-wide load
// produces a few well-filled batches instead of one tiny batch per
// shard. Under load every shard's own queue reaches MinBatch and the
// policy self-disables — stealing never happens where per-shard
// batching is already efficient. The zero value disables coalescing.
type CoalescePolicy struct {
	// MinBatch is the batch size a dispatcher aims for before
	// predicting: a take smaller than this triggers stealing until the
	// merged batch reaches MinBatch (or every neighbor was visited).
	// 0 disables coalescing.
	MinBatch int
	// MaxBatch caps the merged batch size; a victim's queue is split
	// rather than overshooting the cap (the remainder stays queued in
	// enqueue order). 0 means no cap.
	MaxBatch int
}

// ShedPolicy is the load-shedding configuration: past a per-shard
// queue depth, completed windows of sessions below the priority floor
// are dropped instead of queued. Queue growth is the service's
// backpressure signal (Stats.QueueDepth); the policy turns sustained
// growth into bounded, priority-ordered loss instead of unbounded
// latency for everyone. The zero value never sheds.
type ShedPolicy struct {
	// MaxQueueDepth is the per-shard pending-window depth at which
	// shedding starts (0 disables shedding entirely). Depth is checked
	// at enqueue time under the shard lock, so the accounting is exact:
	// every completed window is either predicted exactly once or
	// counted in Stats.ShedWindows exactly once.
	MaxQueueDepth int
	// MinPriority is the priority floor: sessions whose priority
	// (WithSessionPriority, default 0) is below it are shed first —
	// i.e. their windows are dropped while the shard is over
	// MaxQueueDepth. Sessions at or above the floor are never shed.
	MinPriority int
}

// Option configures a Service.
type Option func(*config)

type config struct {
	dep             *Deployment
	source          ModelSource
	estimateFunc    EstimateFunc
	alertFunc       AlertFunc
	alertBelow      float64
	maxSessions     int
	batchInterval   time.Duration
	sessionTTL      time.Duration
	evictFunc       EvictFunc
	refreshInterval time.Duration
	shards          int
	shed            ShedPolicy
	shedFunc        ShedFunc
	coalesce        CoalescePolicy
	placer          Placer
	now             func() time.Time
	manual          bool
	batchFailpoint  func(shard, size int)
}

// WithDeployment sets the initial model.
func WithDeployment(dep *Deployment) Option {
	return func(c *config) { c.dep = dep }
}

// WithModelSource sets where the service pulls deployments from: the
// initial model at New (unless WithDeployment supplied one), and again
// on every Refresh — the hot-swap path for "further system runs ...
// produce new models".
func WithModelSource(src ModelSource) Option {
	return func(c *config) { c.source = src }
}

// WithEstimateFunc registers a service-wide estimate consumer, invoked
// from the dispatch goroutines in per-session order. It must be fast
// and must not call back into Flush or Close. With more than one shard
// it may be invoked concurrently for sessions of different shards, so
// it must be safe for concurrent use.
func WithEstimateFunc(fn EstimateFunc) Option {
	return func(c *config) { c.estimateFunc = fn }
}

// WithAlertFunc raises an alert whenever a session's predicted RTTF
// crosses below threshold seconds (edge-triggered: one alert per
// crossing, re-armed when the prediction recovers or the run ends).
// Like WithEstimateFunc it may be invoked concurrently across shards.
func WithAlertFunc(threshold float64, fn AlertFunc) Option {
	return func(c *config) { c.alertBelow, c.alertFunc = threshold, fn }
}

// WithMaxSessions bounds the number of concurrently active sessions
// (0 = unlimited).
func WithMaxSessions(n int) Option {
	return func(c *config) { c.maxSessions = n }
}

// WithBatchInterval makes each dispatcher coalesce completed windows
// for up to d before predicting, trading latency for bigger prediction
// batches across sessions. 0 (the default) dispatches as soon as the
// dispatcher is free.
func WithBatchInterval(d time.Duration) Option {
	return func(c *config) { c.batchInterval = d }
}

// WithSessionTTL bounds session memory for million-client deployments:
// a background sweep evicts sessions that saw no activity (pushes,
// flushes, or estimate deliveries) for longer than ttl. Evicted
// sessions behave like closed ones — windows already queued are still
// predicted and counted, further pushes fail with ErrSessionClosed,
// and a client that reconnects through the FMS stream simply gets a
// fresh session. The sweep walks one shard at a time, so it never
// stalls the enqueue/predict hot path of the other shards. Pick a ttl
// comfortably above the monitoring sampling interval, or live sessions
// churn. 0 (the default) disables eviction.
func WithSessionTTL(ttl time.Duration) Option {
	return func(c *config) { c.sessionTTL = ttl }
}

// WithSessionEvictFunc registers a consumer for evicted-session
// snapshots (WithSessionTTL): each eviction delivers the session's id
// and Latest() estimate exactly once, from the sweep goroutine — the
// hook for spilling long-idle client state to disk.
func WithSessionEvictFunc(fn EvictFunc) Option {
	return func(c *config) { c.evictFunc = fn }
}

// WithRefreshInterval makes the service pull a fresh deployment from
// its ModelSource every d and hot-swap it in — the paper's "further
// runs produce new models" loop without the caller ever invoking
// Refresh. Pull errors leave the current model serving and the next
// tick retries. Requires WithModelSource; 0 (the default) disables the
// ticker.
//
// Unchanged models are detected by pointer identity: a source should
// cache its *Deployment and hand the same pointer back until a new
// model exists (see Refresh), or every tick burns a registry version
// re-deploying an identical model.
func WithRefreshInterval(d time.Duration) Option {
	return func(c *config) { c.refreshInterval = d }
}

// WithShards sets how many shards (and dispatcher goroutines) the
// service runs. Sessions are placed onto shards by the configured
// Placer (by default an id hash); each shard owns a slice of the
// session map, its own pending queue, and one dispatcher, so enqueue,
// prediction, and the idle sweep contend per shard instead of on one
// service lock. 0 (the default) uses GOMAXPROCS. One shard reproduces
// the single-dispatcher behavior exactly.
func WithShards(n int) Option {
	return func(c *config) { c.shards = n }
}

// WithShedPolicy enables priority-based load shedding under sustained
// overload: when a shard's pending queue is past the policy's depth
// threshold, completed windows of sessions below the priority floor
// are dropped (Push returns ErrWindowShed) instead of queued, and
// counted exactly in Stats.ShedWindows. The zero policy never sheds.
func WithShedPolicy(p ShedPolicy) Option {
	return func(c *config) { c.shed = p }
}

// WithCoalescePolicy enables adaptive cross-shard batch coalescing: a
// dispatcher whose own take is smaller than the policy's MinBatch
// steals its ring neighbors' pending windows into the same
// PredictBatch call. Stealing preserves every per-shard guarantee —
// the registry snapshot is taken after the last steal (post-Deploy
// freshness holds for stolen rows too), the queue-depth and shed
// accounting stay exact because takes happen under the victim shard's
// own lock, and per-session estimate order is preserved because a
// victim's dispatch stays serialized on its dispatchMu for the whole
// merged batch. Under WithManualDispatch the steal order is
// deterministic (ring order from the flushing shard), so fleetsim
// scenarios replay it byte-identically. The zero policy disables
// coalescing.
func WithCoalescePolicy(p CoalescePolicy) Option {
	return func(c *config) { c.coalesce = p }
}

// WithShedFunc registers a consumer for shed-window notifications: one
// call per dropped window, carrying the session id, its priority, the
// window timestamp, and the triggering queue depth. The hook is called
// from the shedding goroutine (the session's pusher) with no lock held;
// it must be fast and safe for concurrent use across sessions. The
// per-priority totals are also available lock-free via
// Stats.ShedByPriority, so the hook is for event-level consumers
// (structured logs, fleetsim event streams), not counting.
func WithShedFunc(fn ShedFunc) Option {
	return func(c *config) { c.shedFunc = fn }
}

// WithClock sets the service's time source (default time.Now). This is
// the serving layer's first fault-injection hook: a simulator can run
// the service under a virtual clock, so idle-TTL eviction and activity
// stamps follow scenario time rather than wall time and a seeded
// scenario replays deterministically. The function must be safe for
// concurrent use and must never go backwards.
func WithClock(now func() time.Time) Option {
	return func(c *config) { c.now = now }
}

// WithManualDispatch disables every background goroutine of the
// service — the per-shard dispatchers, the idle-TTL sweeper, and the
// auto-refresh ticker. Completed windows accumulate in the shard
// queues until the caller invokes Flush (prediction and all callbacks
// run on the calling goroutine, in enqueue order per shard); the idle
// sweep runs only via SweepIdleNow and model refresh only via Refresh.
// Combined with WithClock this makes the service fully deterministic
// under a single driving goroutine: the fleetsim harness uses it to
// replay seeded chaos scenarios to identical event logs. Shutdown
// semantics are unchanged — Close (or cancelling the context) still
// drains every queued window before returning.
func WithManualDispatch() Option {
	return func(c *config) { c.manual = true }
}

// WithBatchFailpoint installs a hook called immediately before every
// prediction batch with the shard index and batch size — a failure
// point for chaos testing. The hook runs on the dispatching goroutine
// with no lock held, so it can stall (simulating a slow consumer and
// building real backpressure), panic (crash testing), or just count.
// It must not call back into Flush or Close.
func WithBatchFailpoint(fn func(shard, size int)) Option {
	return func(c *config) { c.batchFailpoint = fn }
}
