package serve

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/testutil"
)

// BenchmarkShardedDispatch measures sustained window throughput of the
// serving hot path at 10⁴ busy sessions: b.N completed aggregation
// windows pushed by concurrent producers through Session.Push,
// dispatched in cross-session batches, predicted (stub model) and
// delivered — ns/op is the full per-window path including the drain.
// The shards=1 sub-benchmark is the pre-sharding architecture (one
// pending queue, one dispatcher); the larger shard counts split the
// session map, the queue, and the dispatch across that many workers,
// so the committed BENCH reports track the single-vs-sharded ratio on
// the measuring machine (the win is lock-contention and parallelism
// bound: expect ~parity at GOMAXPROCS=1 and scaling ratios on
// multicore boxes).
func BenchmarkShardedDispatch(b *testing.B) {
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) { benchDispatch(b, shards) })
	}
}

func benchDispatch(b *testing.B, shards int) {
	const (
		sessions  = 10_000
		producers = 8
	)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	svc, err := New(ctx,
		WithDeployment(&Deployment{Model: &stubModel{base: 1}, Name: "v1", Aggregation: rawAgg()}),
		WithShards(shards),
	)
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()

	ss := make([]*Session, sessions)
	for i := range ss {
		if ss[i], err = svc.StartSession(fmt.Sprintf("s-%05d", i)); err != nil {
			b.Fatal(err)
		}
	}
	// Prime every session with one in-window datapoint so each later
	// push lands exactly on the next window boundary and completes
	// exactly one window.
	next := make([]float64, sessions)
	for i, s := range ss {
		if err := s.Push(dp(1, float64(i%97))); err != nil {
			b.Fatal(err)
		}
		next[i] = 11
	}
	svc.Flush()
	base := svc.Stats().Predictions

	b.ResetTimer()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		lo, hi := p*sessions/producers, (p+1)*sessions/producers
		quota := b.N/producers + btoi(p < b.N%producers)
		wg.Add(1)
		go func(lo, hi, quota int) {
			defer wg.Done()
			i := lo
			for w := 0; w < quota; w++ {
				if err := ss[i].Push(dp(next[i], 1)); err != nil {
					b.Error(err)
					return
				}
				next[i] += 10
				if i++; i == hi {
					i = lo
				}
			}
		}(lo, hi, quota)
	}
	wg.Wait()
	// The op is the full window lifecycle: wait for every completed
	// window to be predicted and delivered before stopping the clock
	// (Gosched, not a sleep — a sleep's granularity would dominate
	// small iteration counts).
	want := base + uint64(b.N)
	for svc.Stats().Predictions < want {
		runtime.Gosched()
	}
	b.StopTimer()
	if got := svc.Stats().Predictions; got != want {
		b.Fatalf("%d predictions, want %d", got, want)
	}
}

func btoi(v bool) int {
	if v {
		return 1
	}
	return 0
}

// BenchmarkCoalescedDispatch measures the light-load regime the
// coalescer targets: 64 sessions spread over 8 shards each complete
// one window, then one Flush drains the fleet. With coalescing off
// that is 8 tiny per-shard batches per op; with MinBatch=64 the first
// non-empty shard steals the rest and predicts one merged batch — the
// committed BENCH reports track the per-window cost of the two
// regimes.
func BenchmarkCoalescedDispatch(b *testing.B) {
	b.Run("coalesce=off", func(b *testing.B) { benchCoalesce(b) })
	b.Run("coalesce=on", func(b *testing.B) {
		benchCoalesce(b, WithCoalescePolicy(CoalescePolicy{MinBatch: 64}))
	})
}

// BenchmarkSkewedDispatch measures the regime the placement layer
// targets: 256 sessions all FNV-hashed onto shard 0 of 8, so the hash
// placer funnels the whole fleet through one queue and one dispatcher
// while seven shards idle. The placer=load sub-benchmark routes the
// same ids through a load-tracked placer and calls Rebalance every 16
// ops; after the first rebalance the sessions are spread across the
// cold shards and each Flush drains 8 small queues instead of one deep
// one. placer=hash calls Rebalance on the same cadence (a planning
// no-op for the stateless placer) so the two sub-benchmarks pay
// symmetric actuation overhead and the delta isolates routing — the
// committed BENCH reports track hash-vs-load per-window cost under
// skew.
func BenchmarkSkewedDispatch(b *testing.B) {
	b.Run("placer=hash", func(b *testing.B) { benchSkewed(b) })
	b.Run("placer=load", func(b *testing.B) {
		benchSkewed(b, WithPlacement(NewLoadPlacer(LoadPlacerConfig{SkewWatermark: 1.2, MaxMoves: 64})))
	})
}

func benchSkewed(b *testing.B, extra ...Option) {
	const (
		sessions      = 256
		shards        = 8
		rebalanceEach = 16
	)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := append([]Option{
		WithDeployment(&Deployment{Model: &stubModel{base: 1}, Name: "v1", Aggregation: rawAgg()}),
		WithShards(shards),
		WithManualDispatch(),
	}, extra...)
	svc, err := New(ctx, opts...)
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()

	hash := HashPlacer{}
	ids := testutil.IDsOnShard(hash.Place, shards, 0, sessions)
	ss := make([]*Session, sessions)
	next := make([]float64, sessions)
	for i := range ss {
		if ss[i], err = svc.StartSession(ids[i]); err != nil {
			b.Fatal(err)
		}
		if err := ss[i].Push(dp(1, float64(i%97))); err != nil {
			b.Fatal(err)
		}
		next[i] = 11
	}
	svc.Flush()
	base := svc.Stats().Predictions

	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for i := range ss {
			if err := ss[i].Push(dp(next[i], 1)); err != nil {
				b.Fatal(err)
			}
			next[i] += 10
		}
		svc.Flush()
		if n%rebalanceEach == rebalanceEach-1 {
			svc.Rebalance()
		}
	}
	b.StopTimer()
	if got, want := svc.Stats().Predictions, base+uint64(b.N*sessions); got != want {
		b.Fatalf("%d predictions, want %d", got, want)
	}
}

func benchCoalesce(b *testing.B, extra ...Option) {
	const sessions = 64
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := append([]Option{
		WithDeployment(&Deployment{Model: &stubModel{base: 1}, Name: "v1", Aggregation: rawAgg()}),
		WithShards(8),
		WithManualDispatch(),
	}, extra...)
	svc, err := New(ctx, opts...)
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()

	ss := make([]*Session, sessions)
	next := make([]float64, sessions)
	for i := range ss {
		if ss[i], err = svc.StartSession(fmt.Sprintf("s-%05d", i)); err != nil {
			b.Fatal(err)
		}
		if err := ss[i].Push(dp(1, float64(i%97))); err != nil {
			b.Fatal(err)
		}
		next[i] = 11
	}
	svc.Flush()
	base := svc.Stats().Predictions

	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for i := range ss {
			if err := ss[i].Push(dp(next[i], 1)); err != nil {
				b.Fatal(err)
			}
			next[i] += 10
		}
		svc.Flush()
	}
	b.StopTimer()
	if got, want := svc.Stats().Predictions, base+uint64(b.N*sessions); got != want {
		b.Fatalf("%d predictions, want %d", got, want)
	}
}
