package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// shard is one slice of the serving hot path: a share of the session
// map (by the Placer's routing), its own pending queue, and one
// dispatcher goroutine draining it. All shard state is guarded by the
// shard's own mutex, so the service never takes a global lock on the
// enqueue/predict/sweep paths.
type shard struct {
	idx      int // position in Service.shards (immutable)
	mu       sync.Mutex // guards sessions, pending, closed
	sessions map[string]*Session
	pending  []pendingRow
	closed   bool

	// windows counts windows ever enqueued on this shard (monotonic) —
	// the raw per-shard load signal the placement layer differences
	// into window rates.
	windows atomic.Uint64

	kick       chan struct{} // wakes the shard's dispatcher, capacity 1
	dispatchMu sync.Mutex    // serializes this shard's batch processing
}

// pendingRow is one completed window awaiting its prediction batch.
type pendingRow struct {
	sess *Session
	tgen float64
	row  []float64 // full aggregated layout
	// endRun marks the final window of a run: after its estimate is
	// delivered, the session's alert re-arms for the next run.
	endRun bool
}

// shardIndex returns sh's position in the shard slice (for failpoint
// and observability labels).
func (s *Service) shardIndex(sh *shard) int { return sh.idx }

// shardFor routes a session id to its shard through the placement
// layer (default: FNV-1a hashing, see HashPlacer). A misbehaving
// placer returning an out-of-range index falls back to the hash.
func (s *Service) shardFor(id string) *shard {
	idx := s.placer.Place(id, len(s.shards))
	if idx < 0 || idx >= len(s.shards) {
		idx = fnvShard(id, len(s.shards))
	}
	return s.shards[idx]
}

// lockShardFor returns the shard id currently routes to, with that
// shard's lock held. Routing is re-checked under the lock: a
// migration commits its routing-table flip while holding both
// affected shard locks, so once the lock is held and the re-check
// passes, the placement cannot change until the caller unlocks.
func (s *Service) lockShardFor(id string) *shard {
	for {
		sh := s.shardFor(id)
		sh.mu.Lock()
		if s.shardFor(id) == sh {
			return sh
		}
		sh.mu.Unlock()
	}
}

// StartSession registers a new monitored client and returns its
// session. The id must not be active already.
func (s *Service) StartSession(id string, opts ...SessionOption) (*Session, error) {
	if s.closed.Load() {
		return nil, ErrServiceClosed
	}
	sh := s.lockShardFor(id)
	defer sh.mu.Unlock()
	if sh.closed {
		return nil, ErrServiceClosed
	}
	if _, ok := sh.sessions[id]; ok {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateSession, id)
	}
	// Reserve a slot in the global count before inserting: the limit
	// holds exactly across shards without any cross-shard lock.
	if n := s.sessionCount.Add(1); s.cfg.maxSessions > 0 && n > int64(s.cfg.maxSessions) {
		s.sessionCount.Add(-1)
		return nil, ErrTooManySessions
	}
	ss, err := newSession(s, sh, id, opts...)
	if err != nil {
		s.sessionCount.Add(-1)
		return nil, err
	}
	sh.sessions[id] = ss
	return ss, nil
}

// Session returns the active session with the given id, if any.
func (s *Service) Session(id string) (*Session, bool) {
	sh := s.lockShardFor(id)
	defer sh.mu.Unlock()
	ss, ok := sh.sessions[id]
	return ss, ok
}

// Sessions returns the ids of all active sessions.
func (s *Service) Sessions() []string {
	var out []string
	for _, sh := range s.shards {
		sh.mu.Lock()
		for id := range sh.sessions {
			out = append(out, id)
		}
		sh.mu.Unlock()
	}
	return out
}

// enqueue queues one completed window on the session's home shard for
// the next prediction batch, or sheds it under the ShedPolicy. The
// home pointer is re-read under the shard lock: a migration flips it
// while holding both shard locks, so a push racing a migration either
// lands on the old shard before the flip (and moves with the session)
// or retries onto the new one. The session's closed flag is also
// re-checked under the shard lock: a push that raced the idle sweep
// past its own closed-check must not slip a window in after the sweep
// delivered the session's final snapshot. (Lock order sh.mu→ss.mu
// matches the sweep; no caller holds a session lock while acquiring a
// shard lock.)
func (s *Service) enqueue(ss *Session, tgen float64, row []float64, endRun bool) error {
	var sh *shard
	for {
		sh = ss.home.Load()
		sh.mu.Lock()
		if ss.home.Load() == sh {
			break
		}
		sh.mu.Unlock()
	}
	if sh.closed {
		sh.mu.Unlock()
		return ErrServiceClosed
	}
	ss.mu.Lock()
	dead := ss.closed
	ss.mu.Unlock()
	if dead {
		sh.mu.Unlock()
		return ErrSessionClosed
	}
	if p := *s.shedPol.Load(); p.MaxQueueDepth > 0 && len(sh.pending) >= p.MaxQueueDepth && ss.priority < p.MinPriority {
		// Shed: counted under the shard lock, so the windows predicted
		// and the windows shed partition the accepted ones exactly —
		// and the per-priority breakdown (shedMu nests inside the
		// shard lock) always sums to the total.
		s.shedWindows.Add(1)
		s.shedMu.Lock()
		if s.shedByPrio == nil {
			s.shedByPrio = make(map[int]uint64)
		}
		s.shedByPrio[ss.priority]++
		s.shedMu.Unlock()
		depth := len(sh.pending)
		sh.mu.Unlock()
		if fn := s.cfg.shedFunc; fn != nil {
			fn(Shed{SessionID: ss.id, Priority: ss.priority, Tgen: tgen, QueueDepth: depth})
		}
		return ErrWindowShed
	}
	sh.pending = append(sh.pending, pendingRow{sess: ss, tgen: tgen, row: row, endRun: endRun})
	// Depth is incremented under the same lock the batch take
	// decrements under, so the global counter is a sum of per-shard
	// terms that are individually never negative — a concurrent Stats
	// read can never see a negative or double-counted depth.
	s.queueDepth.Add(1)
	// pendingWindows rides the same lock: the idle sweep (which holds
	// this shard's lock) can never observe the append without the
	// count, so a session with queued work is never evicted.
	ss.pendingWindows.Add(1)
	sh.windows.Add(1)
	idx := sh.idx
	sh.mu.Unlock()
	s.placer.Observe(ss.id, idx)
	select {
	case sh.kick <- struct{}{}:
	default:
	}
	return nil
}

// take moves up to limit pending rows (0 = all, oldest first) off sh's
// queue. Everything happens under the shard's own lock — the same
// lock the enqueue-side depth increment, the shed check, and the
// sweep take — so the queue-depth counter and the shed accounting
// stay exact even when the taker is another shard's dispatcher (a
// coalescing thief). The rows' sessions stay protected from the idle
// sweep by their pendingWindows counts, which release drops only
// after delivery.
func (s *Service) take(sh *shard, limit int) []pendingRow {
	sh.mu.Lock()
	rows := sh.pending
	if limit > 0 && limit < len(rows) {
		// Split takes copy the remainder so the taken prefix (capped at
		// its own length) never aliases the victim's future appends.
		rest := make([]pendingRow, len(rows)-limit)
		copy(rest, rows[limit:])
		sh.pending = rest
		rows = rows[:limit:limit]
	} else {
		sh.pending = nil
	}
	if len(rows) > 0 {
		s.queueDepth.Add(-int64(len(rows)))
	}
	sh.mu.Unlock()
	return rows
}

// release drops the pending-window counts enqueue published, after
// the rows' estimates have been delivered. The count lives on the
// session, not the shard, so it survives both coalescing (a thief
// carries the rows) and migration (the session changes home while the
// rows are carried) — the idle sweep spares the session either way.
func release(rows []pendingRow) {
	for i := range rows {
		rows[i].sess.pendingWindows.Add(-1)
	}
}

// removeSession detaches a closed session from its home shard.
func (s *Service) removeSession(ss *Session) {
	var sh *shard
	for {
		sh = ss.home.Load()
		sh.mu.Lock()
		if ss.home.Load() == sh {
			break
		}
		sh.mu.Unlock()
	}
	removed := false
	if cur, ok := sh.sessions[ss.id]; ok && cur == ss {
		delete(sh.sessions, ss.id)
		s.sessionCount.Add(-1)
		removed = true
	}
	sh.mu.Unlock()
	if removed {
		s.placer.Forget(ss.id)
	}
}

// sweeper is the idle-TTL eviction loop: every quarter TTL it removes
// sessions whose last activity is older than the TTL. Sessions with
// windows still awaiting prediction are spared until those estimates
// are delivered, so eviction never drops completed work and the evict
// hook's snapshot is truly final.
func (s *Service) sweeper() {
	defer s.wg.Done()
	interval := s.cfg.sessionTTL / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	if interval > time.Minute {
		interval = time.Minute
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-t.C:
			s.sweepIdle(s.now())
		}
	}
}

// SweepIdleNow runs one idle-TTL eviction pass at the service clock's
// current time, on the calling goroutine — the manual-dispatch
// counterpart of the background sweeper (a virtual-clock harness
// advances its clock, then sweeps). A no-op without WithSessionTTL.
func (s *Service) SweepIdleNow() {
	if s.cfg.sessionTTL > 0 {
		s.sweepIdle(s.now())
	}
}

// sweepIdle evicts every session idle since before now−TTL, one shard
// at a time: victims are closed and detached under their shard's lock
// only, then their final snapshots go to the evict hook with no lock
// held — the enqueue/predict hot path of every other shard (and of
// this shard, between the lock release and the hook calls) never
// stalls behind the sweep. A session racing the sweep with a
// concurrent Push either touches its activity stamp in time to
// survive, or pushes into a closed session and gets ErrSessionClosed —
// its already-queued windows are predicted either way, so the event
// accounting stays exact.
func (s *Service) sweepIdle(now time.Time) {
	cutoff := now.Add(-s.cfg.sessionTTL).UnixNano()
	for _, sh := range s.shards {
		var victims []*Session
		sh.mu.Lock()
		if sh.closed {
			sh.mu.Unlock()
			return
		}
		for id, ss := range sh.sessions {
			// Sessions with windows still awaiting delivery — queued
			// here, queued on a new home mid-migration, or in the batch
			// being predicted right now (by this shard's own dispatcher
			// or by a coalescing thief that took the queue) — carry a
			// nonzero pendingWindows count and are spared this round:
			// the evict hook's snapshot must be final. The delivery
			// itself touches the activity stamp, so such a session is
			// reconsidered one idle TTL after its last estimate, not
			// dropped forever.
			if ss.lastActive.Load() < cutoff && ss.pendingWindows.Load() == 0 {
				victims = append(victims, ss)
				delete(sh.sessions, id)
				// Free the slot at delete time, not after the evict
				// hooks: a StartSession racing a slow hook must see the
				// capacity the map already reflects.
				s.sessionCount.Add(-1)
				// Close under the shard lock: a racing Push has either
				// already enqueued (pendingWindows > 0, so the session
				// was spared) or will observe the closed flag — nothing
				// slips a window in after the final snapshot. Safe: no
				// caller holds a session lock while acquiring a shard
				// lock.
				ss.markClosed()
			}
		}
		sh.mu.Unlock()
		for _, ss := range victims {
			s.evicted.Add(1)
			s.placer.Forget(ss.id)
			if fn := s.cfg.evictFunc; fn != nil {
				last, ok := ss.Latest()
				fn(EvictedSession{ID: ss.id, Last: last, HasEstimate: ok, Estimates: ss.Count()})
			}
		}
	}
}
