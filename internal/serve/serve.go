// Package serve is the production serving layer of the F2PM
// reproduction (paper §III-E deployment, §I's proactive-rejuvenation
// loop): a PredictionService owns a versioned model registry and a set
// of per-client sessions, turns each client's live datapoint stream
// into aggregated feature rows, predicts Remaining Time To Failure in
// cross-session batches, and raises threshold-crossing alerts so an
// operator (or an automated rejuvenation action) can act before the
// failure.
//
// The pieces:
//
//   - Deployment: a trained model plus the feature subset and
//     aggregation config it was trained with (FromReport extracts it
//     from a pipeline report; modelio persists it).
//   - Service: the registry + dispatchers. Deploy atomically hot-swaps
//     the served model; rows already queued keep their ordering and
//     every row enqueued after Deploy returns is predicted by the new
//     model — never a stale one.
//   - Session: one monitored client. Push feeds datapoints through a
//     LiveAggregator; completed windows are queued for the next
//     prediction batch, so thousands of concurrent sessions amortize
//     the kernel/tree evaluation hot path.
//
// The hot path is sharded for fleet-scale client counts: sessions hash
// onto WithShards shards, each with its own pending queue, dispatcher
// goroutine, and slice of the session map. Enqueue, prediction, and
// the idle-TTL sweep only ever take one shard's lock, so a sweep over
// 10⁵ sessions or a slow batch on one shard never stalls the others.
// Per-shard batches still merge all of that shard's sessions into one
// PredictBatch call over the same immutable registry snapshot, so the
// post-Deploy freshness guarantee holds shard by shard. Under
// sustained overload an optional ShedPolicy drops completed windows of
// low-priority sessions (WithSessionPriority) instead of queuing them,
// with exact shed accounting in Stats.
//
// A Service plugs directly into the FMS via monitor.WithStream, closing
// the loop monitor → aggregate → predict → act in one process.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/aggregate"
	"repro/internal/ml"
	"repro/internal/monitor"
	"repro/internal/trace"
)

// Sentinel errors of the serving layer.
var (
	// ErrServiceClosed is returned once the service's context is
	// cancelled or Close has run.
	ErrServiceClosed = errors.New("serve: service closed")
	// ErrSessionClosed is returned by operations on a closed session.
	ErrSessionClosed = errors.New("serve: session closed")
	// ErrTooManySessions is returned by StartSession past the
	// WithMaxSessions limit.
	ErrTooManySessions = errors.New("serve: session limit reached")
	// ErrNoModel means no deployment is available (no WithDeployment /
	// WithModelSource, or a report with no successful model).
	ErrNoModel = errors.New("serve: no model deployed")
	// ErrDuplicateSession is returned by StartSession for an id that is
	// already active.
	ErrDuplicateSession = errors.New("serve: session id already active")
	// ErrUnknownFeature means a deployment names a column the service's
	// aggregated layout does not produce.
	ErrUnknownFeature = errors.New("serve: unknown feature")
	// ErrAggregationMismatch means a deployment was trained under a
	// different windowing configuration than the service runs.
	ErrAggregationMismatch = errors.New("serve: deployment aggregation config differs from service")
	// ErrWindowShed is returned by Push/Flush/EndRun when the completed
	// window was dropped by the ShedPolicy: the session's shard is past
	// its queue-depth threshold and the session's priority is below the
	// policy's floor. The window is counted in Stats.ShedWindows and
	// will never be predicted.
	ErrWindowShed = errors.New("serve: window shed under overload")
)

// Estimate is one RTTF prediction for one session.
type Estimate struct {
	// SessionID names the monitored client.
	SessionID string
	// Tgen is the aggregated timestamp (elapsed seconds since the
	// client's system start) of the window the estimate is for.
	Tgen float64
	// RTTF is the predicted remaining time to failure, seconds.
	RTTF float64
	// ModelVersion and ModelName identify the registry entry that
	// produced the estimate (versions start at 1 and grow with every
	// Deploy).
	ModelVersion uint64
	ModelName    string
}

// Alert is an estimate that crossed the alert threshold from above —
// the "act now" signal of the paper's proactive-rejuvenation loop.
type Alert struct {
	Estimate
	// Threshold is the configured alert level, seconds.
	Threshold float64
}

// AlertFunc consumes threshold-crossing alerts.
type AlertFunc func(Alert)

// EstimateFunc consumes every emitted estimate.
type EstimateFunc func(Estimate)

// ModelSource supplies deployments on demand — the hook that connects
// the service to wherever fresh models come from (a retraining
// pipeline, a model file, a registry service).
type ModelSource interface {
	Deployment(ctx context.Context) (*Deployment, error)
}

// ModelSourceFunc adapts a function to ModelSource.
type ModelSourceFunc func(ctx context.Context) (*Deployment, error)

// Deployment implements ModelSource.
func (f ModelSourceFunc) Deployment(ctx context.Context) (*Deployment, error) { return f(ctx) }

// EvictedSession is the final snapshot of a session the idle-TTL sweep
// removed: its id, its last estimate (if it ever received one), and
// how many estimates it consumed — everything a spill-to-disk or
// audit hook needs, returned exactly once per eviction.
type EvictedSession struct {
	// ID names the monitored client the session belonged to.
	ID string
	// Last is the most recent estimate delivered to the session; only
	// meaningful when HasEstimate is true.
	Last Estimate
	// HasEstimate reports whether the session ever received an estimate.
	HasEstimate bool
	// Estimates counts the estimates the session received in total.
	Estimates uint64
}

// EvictFunc consumes evicted-session snapshots.
type EvictFunc func(EvictedSession)

// Shed describes one window dropped by the ShedPolicy — who lost it,
// not just that something was lost: the session, its priority, the
// window's aggregated timestamp, and the shard queue depth that
// triggered the drop. Delivered to the WithShedFunc hook and counted
// per priority in Stats.ShedByPriority, so operators (and fleetsim
// assertions) can verify that only below-floor sessions pay under
// overload.
type Shed struct {
	// SessionID names the session whose window was dropped.
	SessionID string
	// Priority is the session's load-shedding priority (below the
	// policy floor by construction).
	Priority int
	// Tgen is the aggregated timestamp of the dropped window.
	Tgen float64
	// QueueDepth is the shard's pending depth at the moment of the
	// drop (at or past the policy's MaxQueueDepth).
	QueueDepth int
}

// ShedFunc consumes shed-window notifications.
type ShedFunc func(Shed)

// CoalescePolicy is the adaptive cross-shard batch-coalescing
// configuration: a dispatcher whose freshly-taken queue is smaller
// than MinBatch steals its neighbors' pending windows (ring order,
// try-lock only — it never blocks behind a busy neighbor) and merges
// them into the same PredictBatch call, so light fleet-wide load
// produces a few well-filled batches instead of one tiny batch per
// shard. Under load every shard's own queue reaches MinBatch and the
// policy self-disables — stealing never happens where per-shard
// batching is already efficient. The zero value disables coalescing.
type CoalescePolicy struct {
	// MinBatch is the batch size a dispatcher aims for before
	// predicting: a take smaller than this triggers stealing until the
	// merged batch reaches MinBatch (or every neighbor was visited).
	// 0 disables coalescing.
	MinBatch int
	// MaxBatch caps the merged batch size; a victim's queue is split
	// rather than overshooting the cap (the remainder stays queued in
	// enqueue order). 0 means no cap.
	MaxBatch int
}

// ShedPolicy is the load-shedding configuration: past a per-shard
// queue depth, completed windows of sessions below the priority floor
// are dropped instead of queued. Queue growth is the service's
// backpressure signal (Stats.QueueDepth); the policy turns sustained
// growth into bounded, priority-ordered loss instead of unbounded
// latency for everyone. The zero value never sheds.
type ShedPolicy struct {
	// MaxQueueDepth is the per-shard pending-window depth at which
	// shedding starts (0 disables shedding entirely). Depth is checked
	// at enqueue time under the shard lock, so the accounting is exact:
	// every completed window is either predicted exactly once or
	// counted in Stats.ShedWindows exactly once.
	MaxQueueDepth int
	// MinPriority is the priority floor: sessions whose priority
	// (WithSessionPriority, default 0) is below it are shed first —
	// i.e. their windows are dropped while the shard is over
	// MaxQueueDepth. Sessions at or above the floor are never shed.
	MinPriority int
}

// Option configures a Service.
type Option func(*config)

type config struct {
	dep             *Deployment
	source          ModelSource
	estimateFunc    EstimateFunc
	alertFunc       AlertFunc
	alertBelow      float64
	maxSessions     int
	batchInterval   time.Duration
	sessionTTL      time.Duration
	evictFunc       EvictFunc
	refreshInterval time.Duration
	shards          int
	shed            ShedPolicy
	shedFunc        ShedFunc
	coalesce        CoalescePolicy
	now             func() time.Time
	manual          bool
	batchFailpoint  func(shard, size int)
}

// WithDeployment sets the initial model.
func WithDeployment(dep *Deployment) Option {
	return func(c *config) { c.dep = dep }
}

// WithModelSource sets where the service pulls deployments from: the
// initial model at New (unless WithDeployment supplied one), and again
// on every Refresh — the hot-swap path for "further system runs ...
// produce new models".
func WithModelSource(src ModelSource) Option {
	return func(c *config) { c.source = src }
}

// WithEstimateFunc registers a service-wide estimate consumer, invoked
// from the dispatch goroutines in per-session order. It must be fast
// and must not call back into Flush or Close. With more than one shard
// it may be invoked concurrently for sessions of different shards, so
// it must be safe for concurrent use.
func WithEstimateFunc(fn EstimateFunc) Option {
	return func(c *config) { c.estimateFunc = fn }
}

// WithAlertFunc raises an alert whenever a session's predicted RTTF
// crosses below threshold seconds (edge-triggered: one alert per
// crossing, re-armed when the prediction recovers or the run ends).
// Like WithEstimateFunc it may be invoked concurrently across shards.
func WithAlertFunc(threshold float64, fn AlertFunc) Option {
	return func(c *config) { c.alertBelow, c.alertFunc = threshold, fn }
}

// WithMaxSessions bounds the number of concurrently active sessions
// (0 = unlimited).
func WithMaxSessions(n int) Option {
	return func(c *config) { c.maxSessions = n }
}

// WithBatchInterval makes each dispatcher coalesce completed windows
// for up to d before predicting, trading latency for bigger prediction
// batches across sessions. 0 (the default) dispatches as soon as the
// dispatcher is free.
func WithBatchInterval(d time.Duration) Option {
	return func(c *config) { c.batchInterval = d }
}

// WithSessionTTL bounds session memory for million-client deployments:
// a background sweep evicts sessions that saw no activity (pushes,
// flushes, or estimate deliveries) for longer than ttl. Evicted
// sessions behave like closed ones — windows already queued are still
// predicted and counted, further pushes fail with ErrSessionClosed,
// and a client that reconnects through the FMS stream simply gets a
// fresh session. The sweep walks one shard at a time, so it never
// stalls the enqueue/predict hot path of the other shards. Pick a ttl
// comfortably above the monitoring sampling interval, or live sessions
// churn. 0 (the default) disables eviction.
func WithSessionTTL(ttl time.Duration) Option {
	return func(c *config) { c.sessionTTL = ttl }
}

// WithSessionEvictFunc registers a consumer for evicted-session
// snapshots (WithSessionTTL): each eviction delivers the session's id
// and Latest() estimate exactly once, from the sweep goroutine — the
// hook for spilling long-idle client state to disk.
func WithSessionEvictFunc(fn EvictFunc) Option {
	return func(c *config) { c.evictFunc = fn }
}

// WithRefreshInterval makes the service pull a fresh deployment from
// its ModelSource every d and hot-swap it in — the paper's "further
// runs produce new models" loop without the caller ever invoking
// Refresh. Pull errors leave the current model serving and the next
// tick retries. Requires WithModelSource; 0 (the default) disables the
// ticker.
//
// Unchanged models are detected by pointer identity: a source should
// cache its *Deployment and hand the same pointer back until a new
// model exists (see Refresh), or every tick burns a registry version
// re-deploying an identical model.
func WithRefreshInterval(d time.Duration) Option {
	return func(c *config) { c.refreshInterval = d }
}

// WithShards sets how many shards (and dispatcher goroutines) the
// service runs. Sessions hash onto shards by id; each shard owns a
// slice of the session map, its own pending queue, and one dispatcher,
// so enqueue, prediction, and the idle sweep contend per shard instead
// of on one service lock. 0 (the default) uses GOMAXPROCS. One shard
// reproduces the single-dispatcher behavior exactly.
func WithShards(n int) Option {
	return func(c *config) { c.shards = n }
}

// WithShedPolicy enables priority-based load shedding under sustained
// overload: when a shard's pending queue is past the policy's depth
// threshold, completed windows of sessions below the priority floor
// are dropped (Push returns ErrWindowShed) instead of queued, and
// counted exactly in Stats.ShedWindows. The zero policy never sheds.
func WithShedPolicy(p ShedPolicy) Option {
	return func(c *config) { c.shed = p }
}

// WithCoalescePolicy enables adaptive cross-shard batch coalescing: a
// dispatcher whose own take is smaller than the policy's MinBatch
// steals its ring neighbors' pending windows into the same
// PredictBatch call. Stealing preserves every per-shard guarantee —
// the registry snapshot is taken after the last steal (post-Deploy
// freshness holds for stolen rows too), the queue-depth and shed
// accounting stay exact because takes happen under the victim shard's
// own lock, and per-session estimate order is preserved because a
// victim's dispatch stays serialized on its dispatchMu for the whole
// merged batch. Under WithManualDispatch the steal order is
// deterministic (ring order from the flushing shard), so fleetsim
// scenarios replay it byte-identically. The zero policy disables
// coalescing.
func WithCoalescePolicy(p CoalescePolicy) Option {
	return func(c *config) { c.coalesce = p }
}

// WithShedFunc registers a consumer for shed-window notifications: one
// call per dropped window, carrying the session id, its priority, the
// window timestamp, and the triggering queue depth. The hook is called
// from the shedding goroutine (the session's pusher) with no lock held;
// it must be fast and safe for concurrent use across sessions. The
// per-priority totals are also available lock-free via
// Stats.ShedByPriority, so the hook is for event-level consumers
// (structured logs, fleetsim event streams), not counting.
func WithShedFunc(fn ShedFunc) Option {
	return func(c *config) { c.shedFunc = fn }
}

// WithClock sets the service's time source (default time.Now). This is
// the serving layer's first fault-injection hook: a simulator can run
// the service under a virtual clock, so idle-TTL eviction and activity
// stamps follow scenario time rather than wall time and a seeded
// scenario replays deterministically. The function must be safe for
// concurrent use and must never go backwards.
func WithClock(now func() time.Time) Option {
	return func(c *config) { c.now = now }
}

// WithManualDispatch disables every background goroutine of the
// service — the per-shard dispatchers, the idle-TTL sweeper, and the
// auto-refresh ticker. Completed windows accumulate in the shard
// queues until the caller invokes Flush (prediction and all callbacks
// run on the calling goroutine, in enqueue order per shard); the idle
// sweep runs only via SweepIdleNow and model refresh only via Refresh.
// Combined with WithClock this makes the service fully deterministic
// under a single driving goroutine: the fleetsim harness uses it to
// replay seeded chaos scenarios to identical event logs. Shutdown
// semantics are unchanged — Close (or cancelling the context) still
// drains every queued window before returning.
func WithManualDispatch() Option {
	return func(c *config) { c.manual = true }
}

// WithBatchFailpoint installs a hook called immediately before every
// prediction batch with the shard index and batch size — a failure
// point for chaos testing. The hook runs on the dispatching goroutine
// with no lock held, so it can stall (simulating a slow consumer and
// building real backpressure), panic (crash testing), or just count.
// It must not call back into Flush or Close.
func WithBatchFailpoint(fn func(shard, size int)) Option {
	return func(c *config) { c.batchFailpoint = fn }
}

// pendingRow is one completed window awaiting its prediction batch.
type pendingRow struct {
	sess *Session
	tgen float64
	row  []float64 // full aggregated layout
	// endRun marks the final window of a run: after its estimate is
	// delivered, the session's alert re-arms for the next run.
	endRun bool
}

// Stats is a snapshot of service counters — the backpressure and
// lifecycle observability surface: queue depth says how far the
// dispatchers are behind, last-batch latency/size say what each
// dispatch costs, and the eviction/refresh/shed counters expose the
// background loops and the load shedder.
type Stats struct {
	// Sessions is the number of currently active sessions.
	Sessions int
	// Shards is the number of dispatch shards the service runs.
	Shards int
	// Predictions counts estimates emitted since New.
	Predictions uint64
	// Alerts counts threshold crossings since New.
	Alerts uint64
	// ModelVersion is the currently served registry version.
	ModelVersion uint64
	// QueueDepth is the number of completed windows waiting for their
	// next prediction batch, summed over all shards. The counter is
	// maintained atomically under the shard locks, so a snapshot taken
	// mid-sweep or mid-batch is never negative and never double-counts
	// a window. Persistent growth means the service is past its
	// sustainable load — the backpressure signal the ShedPolicy acts
	// on.
	QueueDepth int
	// ShedWindows counts completed windows dropped by the ShedPolicy
	// since New. Every completed window is either predicted exactly
	// once or counted here exactly once — the two never overlap.
	ShedWindows uint64
	// ShedByPriority breaks ShedWindows down by the shedding session's
	// priority — who lost windows, not just how many. The map is a
	// fresh copy per Stats call (nil when nothing was ever shed); its
	// values always sum to ShedWindows, and under a correctly
	// configured policy every key is below the policy's MinPriority
	// floor.
	ShedByPriority map[int]uint64
	// EvictedSessions counts idle-TTL session evictions since New.
	EvictedSessions uint64
	// Refreshes counts successful ModelSource hot-swaps since New
	// (both auto-refresh ticks and explicit Refresh calls).
	Refreshes uint64
	// RefreshFailures counts ModelSource pulls that returned an error.
	// A failed pull never drops or regresses the served model — the
	// current deployment keeps serving and the next tick retries — so
	// this counter plus RegistryStale is how refresh trouble surfaces.
	RefreshFailures uint64
	// RegistryStale reports that the service's ModelSource is serving
	// its last-good deployment because the upstream registry is
	// unreachable or returning garbage (stale-while-revalidate
	// failover). Predictions keep flowing from the last-good model; the
	// flag, RegistryStaleAge, and RegistryLastError say so out loud.
	// Only populated when the ModelSource implements StatusSource
	// (FailoverSource, HTTPModelSource).
	RegistryStale bool
	// RegistryStaleAge is how long the source has been serving stale
	// (zero when fresh), on the service clock.
	RegistryStaleAge time.Duration
	// RegistryLastError is the most recent upstream failure (empty when
	// fresh).
	RegistryLastError string
	// CoalescedBatches counts prediction batches that merged at least
	// one stolen neighbor window under the CoalescePolicy, and
	// CoalescedWindows counts the stolen windows themselves. Together
	// with LastBatchSize they show the coalescer doing its job: at
	// light fleet-wide load CoalescedBatches grows and batches get
	// larger; under per-shard load both counters stay flat because
	// every shard's own take already reaches MinBatch.
	CoalescedBatches uint64
	CoalescedWindows uint64
	// LastBatchLatency is the wall time of the most recent prediction
	// batch (on any shard), and LastBatchSize its window count.
	LastBatchLatency time.Duration
	LastBatchSize    int
}

// shard is one slice of the serving hot path: a share of the session
// map (by id hash), its own pending queue and in-flight set, and one
// dispatcher goroutine draining it. All shard state is guarded by the
// shard's own mutex, so the service never takes a global lock on the
// enqueue/predict/sweep paths.
type shard struct {
	mu       sync.Mutex // guards sessions, pending, inflight, closed
	sessions map[string]*Session
	pending  []pendingRow
	// inflight counts, per session, the windows taken off this shard's
	// queue whose estimates have not been delivered yet: the idle sweep
	// must not evict such a session — its snapshot would not be final.
	// A count rather than a set because with coalescing the taker can
	// be another shard's dispatcher (a thief), and marks are released
	// batch segment by batch segment instead of being cleared wholesale.
	inflight map[*Session]int
	closed   bool

	kick       chan struct{} // wakes the shard's dispatcher, capacity 1
	dispatchMu sync.Mutex    // serializes this shard's batch processing
}

// Service is the prediction service: a versioned model registry, the
// sharded session set, and the batching dispatchers. All methods are
// safe for concurrent use. The service stops — sessions refuse further
// pushes, the dispatchers drain and exit — when the context given to
// New is cancelled or Close is called.
type Service struct {
	cfg    config
	agg    aggregate.Config
	names  []string
	colIdx map[string]int

	ctx    context.Context
	cancel context.CancelFunc

	// now is the pluggable time source (WithClock; default time.Now):
	// activity stamps and the idle-TTL cutoff read scenario time from
	// it, so a virtual-clock harness controls eviction deterministically.
	now func() time.Time

	cur      atomic.Pointer[modelVersion]
	nextVer  atomic.Uint64
	deployMu sync.Mutex // serializes Deploy (version allocation + store)

	shards []*shard
	// closed flips before the per-shard closed flags: StartSession
	// checks it so no session can appear on a shard the shutdown pass
	// has not reached yet.
	closed       atomic.Bool
	shutdownOnce sync.Once
	wg           sync.WaitGroup

	// shedPol is the live shed policy: seeded from WithShedPolicy and
	// swappable at runtime via SetShedPolicy, so a supervisor can raise
	// or lower the floor under sustained overload without a restart.
	// Enqueue loads it once per window, so a swap takes effect on the
	// next completed window with no lock on the hot path.
	shedPol atomic.Pointer[ShedPolicy]

	// sessionCount is the global active-session count: reserved before
	// insert in StartSession so WithMaxSessions holds exactly across
	// shards without a global lock.
	sessionCount atomic.Int64
	queueDepth   atomic.Int64
	shedWindows  atomic.Uint64
	// shedByPrio breaks shedWindows down by session priority. Guarded
	// by shedMu (nested inside the shard lock on the shed path, so the
	// per-priority totals always sum to shedWindows exactly).
	shedMu          sync.Mutex
	shedByPrio      map[int]uint64
	predictions     atomic.Uint64
	alerts          atomic.Uint64
	evicted         atomic.Uint64
	refreshes       atomic.Uint64
	refreshFailures atomic.Uint64
	lastBatchNs     atomic.Int64
	lastBatchSize   atomic.Int64
	coalBatches     atomic.Uint64
	coalWindows     atomic.Uint64
}

// New builds and starts a prediction service. The initial model comes
// from WithDeployment or, failing that, from WithModelSource; one of
// the two is required. Cancelling ctx closes the service.
func New(ctx context.Context, opts ...Option) (*Service, error) {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.shards < 0 {
		return nil, fmt.Errorf("serve: WithShards(%d): shard count must be non-negative", cfg.shards)
	}
	if cfg.shed.MaxQueueDepth < 0 || cfg.shed.MinPriority < 0 {
		return nil, fmt.Errorf("serve: ShedPolicy fields must be non-negative: %+v", cfg.shed)
	}
	if cfg.coalesce.MinBatch < 0 || cfg.coalesce.MaxBatch < 0 {
		return nil, fmt.Errorf("serve: CoalescePolicy fields must be non-negative: %+v", cfg.coalesce)
	}
	if cfg.coalesce.MaxBatch > 0 && cfg.coalesce.MaxBatch < cfg.coalesce.MinBatch {
		return nil, fmt.Errorf("serve: CoalescePolicy MaxBatch %d below MinBatch %d", cfg.coalesce.MaxBatch, cfg.coalesce.MinBatch)
	}
	dep := cfg.dep
	if dep == nil && cfg.source != nil {
		var err error
		if dep, err = cfg.source.Deployment(ctx); err != nil {
			return nil, fmt.Errorf("serve: pulling initial model: %w", err)
		}
	}
	if dep == nil || dep.Model == nil {
		return nil, ErrNoModel
	}
	if err := dep.Aggregation.Validate(); err != nil {
		return nil, fmt.Errorf("serve: deployment aggregation: %w", err)
	}
	la, err := aggregate.NewLiveAggregator(dep.Aggregation)
	if err != nil {
		return nil, err
	}
	names := la.ColNames()
	nShards := cfg.shards
	if nShards == 0 {
		nShards = runtime.GOMAXPROCS(0)
	}
	s := &Service{
		cfg:    cfg,
		agg:    dep.Aggregation,
		names:  names,
		colIdx: make(map[string]int, len(names)),
		shards: make([]*shard, nShards),
		now:    cfg.now,
	}
	if s.now == nil {
		s.now = time.Now
	}
	shed := cfg.shed
	s.shedPol.Store(&shed)
	for i := range s.shards {
		s.shards[i] = &shard{
			sessions: make(map[string]*Session),
			inflight: make(map[*Session]int),
			kick:     make(chan struct{}, 1),
		}
	}
	for i, n := range names {
		s.colIdx[n] = i
	}
	mv, err := newModelVersion(dep, s.colIdx)
	if err != nil {
		return nil, err
	}
	mv.version = s.nextVer.Add(1)
	s.cur.Store(mv)
	if cfg.refreshInterval > 0 && cfg.source == nil {
		return nil, fmt.Errorf("serve: WithRefreshInterval requires a ModelSource")
	}
	s.ctx, s.cancel = context.WithCancel(ctx)
	if cfg.manual {
		// Manual dispatch: no dispatchers, sweeper, or refresher — the
		// caller drives Flush/SweepIdleNow/Refresh. One watcher keeps
		// the shutdown contract: cancelling the context (or Close)
		// still drains every queued window exactly once.
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			<-s.ctx.Done()
			s.shutdownOnce.Do(s.shutdown)
		}()
		return s, nil
	}
	for _, sh := range s.shards {
		s.wg.Add(1)
		go s.dispatcher(sh)
	}
	if cfg.sessionTTL > 0 {
		s.wg.Add(1)
		go s.sweeper()
	}
	if cfg.refreshInterval > 0 {
		s.wg.Add(1)
		go s.refresher()
	}
	return s, nil
}

// shardIndex returns sh's position in the shard slice (for failpoint
// and observability labels).
func (s *Service) shardIndex(sh *shard) int {
	for i, cand := range s.shards {
		if cand == sh {
			return i
		}
	}
	return -1
}

// shardFor hashes a session id onto its shard (FNV-1a: cheap, stable,
// and uniform enough that 10⁴ ids spread within a few percent).
func (s *Service) shardFor(id string) *shard {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(id); i++ {
		h = (h ^ uint32(id[i])) * prime32
	}
	return s.shards[h%uint32(len(s.shards))]
}

// sweeper is the idle-TTL eviction loop: every quarter TTL it removes
// sessions whose last activity is older than the TTL. Sessions with
// windows still awaiting prediction are spared until those estimates
// are delivered, so eviction never drops completed work and the evict
// hook's snapshot is truly final.
func (s *Service) sweeper() {
	defer s.wg.Done()
	interval := s.cfg.sessionTTL / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	if interval > time.Minute {
		interval = time.Minute
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-t.C:
			s.sweepIdle(s.now())
		}
	}
}

// SweepIdleNow runs one idle-TTL eviction pass at the service clock's
// current time, on the calling goroutine — the manual-dispatch
// counterpart of the background sweeper (a virtual-clock harness
// advances its clock, then sweeps). A no-op without WithSessionTTL.
func (s *Service) SweepIdleNow() {
	if s.cfg.sessionTTL > 0 {
		s.sweepIdle(s.now())
	}
}

// sweepIdle evicts every session idle since before now−TTL, one shard
// at a time: victims are closed and detached under their shard's lock
// only, then their final snapshots go to the evict hook with no lock
// held — the enqueue/predict hot path of every other shard (and of
// this shard, between the lock release and the hook calls) never
// stalls behind the sweep. A session racing the sweep with a
// concurrent Push either touches its activity stamp in time to
// survive, or pushes into a closed session and gets ErrSessionClosed —
// its already-queued windows are predicted either way, so the event
// accounting stays exact.
func (s *Service) sweepIdle(now time.Time) {
	cutoff := now.Add(-s.cfg.sessionTTL).UnixNano()
	for _, sh := range s.shards {
		var victims []*Session
		sh.mu.Lock()
		if sh.closed {
			sh.mu.Unlock()
			return
		}
		// Sessions with windows still awaiting delivery — queued, or in
		// the batch being predicted right now (by this shard's own
		// dispatcher or by a coalescing thief that took the queue) —
		// are spared this round: the evict hook's snapshot must be
		// final. The delivery itself touches the activity stamp, so
		// such a session is reconsidered one idle TTL after its last
		// estimate, not dropped forever.
		queued := make(map[*Session]bool, len(sh.pending))
		for i := range sh.pending {
			queued[sh.pending[i].sess] = true
		}
		for id, ss := range sh.sessions {
			if ss.lastActive.Load() < cutoff && !queued[ss] && sh.inflight[ss] == 0 {
				victims = append(victims, ss)
				delete(sh.sessions, id)
				// Free the slot at delete time, not after the evict
				// hooks: a StartSession racing a slow hook must see the
				// capacity the map already reflects.
				s.sessionCount.Add(-1)
				// Close under the shard lock: a racing Push has either
				// already enqueued (visible in pending above, so the
				// session was spared) or will observe the closed flag —
				// nothing slips a window in after the final snapshot.
				// Safe: no caller holds a session lock while acquiring
				// a shard lock.
				ss.markClosed()
			}
		}
		sh.mu.Unlock()
		for _, ss := range victims {
			s.evicted.Add(1)
			if fn := s.cfg.evictFunc; fn != nil {
				last, ok := ss.Latest()
				fn(EvictedSession{ID: ss.id, Last: last, HasEstimate: ok, Estimates: ss.Count()})
			}
		}
	}
}

// refresher is the auto-refresh loop behind WithRefreshInterval: each
// tick pulls a deployment from the ModelSource and hot-swaps it; a
// failed pull keeps the current model and the next tick retries.
func (s *Service) refresher() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.refreshInterval)
	defer t.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-t.C:
			_, _ = s.Refresh(s.ctx)
		}
	}
}

// ColNames returns the full aggregated column layout sessions emit.
func (s *Service) ColNames() []string { return append([]string(nil), s.names...) }

// Aggregation returns the windowing configuration the service runs.
func (s *Service) Aggregation() aggregate.Config { return s.agg }

// ModelVersion returns the currently served registry version.
func (s *Service) ModelVersion() uint64 { return s.cur.Load().version }

// Deploy atomically hot-swaps the served model and returns the new
// registry version. The deployment must have been trained under the
// service's aggregation config (its feature subset may differ — the
// projection is rebuilt). In-flight batches finish with the model they
// snapshotted; every window enqueued after Deploy returns is predicted
// by the new model, on every shard: each shard snapshots the registry
// after taking its queue, so a row enqueued post-Deploy can only land
// in a batch whose snapshot already sees the new model.
func (s *Service) Deploy(dep *Deployment) (uint64, error) {
	if dep == nil || dep.Model == nil {
		return 0, ErrNoModel
	}
	if dep.Aggregation != s.agg {
		return 0, ErrAggregationMismatch
	}
	mv, err := newModelVersion(dep, s.colIdx)
	if err != nil {
		return 0, err
	}
	// Serialize concurrent deploys so a failed attempt never burns a
	// version and the served version never moves backwards.
	s.deployMu.Lock()
	defer s.deployMu.Unlock()
	mv.version = s.nextVer.Add(1)
	s.cur.Store(mv)
	return mv.version, nil
}

// SetShedPolicy hot-swaps the load-shedding policy. The change takes
// effect on the next completed window; windows already queued are
// unaffected. This is the overload actuator of the autonomic loop: a
// supervisor watching Stats.QueueDepth and ShedByPriority can tighten
// the floor under sustained overload and relax it once the queue
// drains, without restarting the service. The zero policy disables
// shedding.
func (s *Service) SetShedPolicy(p ShedPolicy) error {
	if p.MaxQueueDepth < 0 || p.MinPriority < 0 {
		return fmt.Errorf("serve: ShedPolicy fields must be non-negative: %+v", p)
	}
	s.shedPol.Store(&p)
	return nil
}

// ShedPolicy returns the currently active load-shedding policy.
func (s *Service) ShedPolicy() ShedPolicy { return *s.shedPol.Load() }

// Refresh pulls a fresh deployment from the configured ModelSource and
// hot-swaps it in, returning the new registry version. A source that
// hands back the same *Deployment it served last time is a no-op: the
// current version keeps serving and no registry version is burned, so
// an auto-refresh ticker over an unchanged model stays quiet.
func (s *Service) Refresh(ctx context.Context) (uint64, error) {
	if s.cfg.source == nil {
		return 0, fmt.Errorf("serve: Refresh without a ModelSource")
	}
	dep, err := s.cfg.source.Deployment(ctx)
	if err != nil {
		s.refreshFailures.Add(1)
		return 0, fmt.Errorf("serve: pulling model: %w", err)
	}
	if cur := s.cur.Load(); cur.origin == dep {
		return cur.version, nil
	}
	ver, err := s.Deploy(dep)
	if err == nil {
		s.refreshes.Add(1)
	}
	return ver, err
}

// StartSession registers a new monitored client and returns its
// session. The id must not be active already.
func (s *Service) StartSession(id string, opts ...SessionOption) (*Session, error) {
	if s.closed.Load() {
		return nil, ErrServiceClosed
	}
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.closed {
		return nil, ErrServiceClosed
	}
	if _, ok := sh.sessions[id]; ok {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateSession, id)
	}
	// Reserve a slot in the global count before inserting: the limit
	// holds exactly across shards without any cross-shard lock.
	if n := s.sessionCount.Add(1); s.cfg.maxSessions > 0 && n > int64(s.cfg.maxSessions) {
		s.sessionCount.Add(-1)
		return nil, ErrTooManySessions
	}
	ss, err := newSession(s, sh, id, opts...)
	if err != nil {
		s.sessionCount.Add(-1)
		return nil, err
	}
	sh.sessions[id] = ss
	return ss, nil
}

// Session returns the active session with the given id, if any.
func (s *Service) Session(id string) (*Session, bool) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ss, ok := sh.sessions[id]
	return ss, ok
}

// Sessions returns the ids of all active sessions.
func (s *Service) Sessions() []string {
	var out []string
	for _, sh := range s.shards {
		sh.mu.Lock()
		for id := range sh.sessions {
			out = append(out, id)
		}
		sh.mu.Unlock()
	}
	return out
}

// Stats returns a snapshot of the service counters. Every scalar field
// is read from an atomic (the per-priority shed map takes only its own
// small mutex, never a shard lock), so Stats never contends with the
// hot path and a snapshot taken mid-sweep or mid-batch is internally
// consistent: the queue depth is the exact sum over shards (never
// negative, never double-counted) and the shed/prediction counters
// partition the completed windows.
func (s *Service) Stats() Stats {
	var byPrio map[int]uint64
	s.shedMu.Lock()
	if len(s.shedByPrio) > 0 {
		byPrio = make(map[int]uint64, len(s.shedByPrio))
		for p, n := range s.shedByPrio {
			byPrio[p] = n
		}
	}
	s.shedMu.Unlock()
	out := Stats{
		ShedByPriority:   byPrio,
		Sessions:         int(s.sessionCount.Load()),
		Shards:           len(s.shards),
		Predictions:      s.predictions.Load(),
		Alerts:           s.alerts.Load(),
		ModelVersion:     s.cur.Load().version,
		QueueDepth:       int(s.queueDepth.Load()),
		ShedWindows:      s.shedWindows.Load(),
		EvictedSessions:  s.evicted.Load(),
		Refreshes:        s.refreshes.Load(),
		RefreshFailures:  s.refreshFailures.Load(),
		CoalescedBatches: s.coalBatches.Load(),
		CoalescedWindows: s.coalWindows.Load(),
		LastBatchLatency: time.Duration(s.lastBatchNs.Load()),
		LastBatchSize:    int(s.lastBatchSize.Load()),
	}
	// Staleness ride-along: a StatusSource (FailoverSource,
	// HTTPModelSource) reports whether the deployments it hands out are
	// fresh registry reads or the last-good failover copy. The source's
	// own small mutex is the only lock involved — never a shard lock.
	if sr, ok := s.cfg.source.(StatusSource); ok {
		st := sr.SourceStatus()
		out.RegistryStale = st.Stale
		out.RegistryLastError = st.LastError
		if st.Stale && !st.StaleSince.IsZero() {
			if age := s.now().Sub(st.StaleSince); age > 0 {
				out.RegistryStaleAge = age
			}
		}
	}
	return out
}

// HandleDatapoint implements monitor.StreamHandler: datapoints from the
// FMS stream feed the sender's session, which is auto-created on first
// contact (datapoints for clients beyond the session limit are
// dropped).
func (s *Service) HandleDatapoint(clientID string, d trace.Datapoint) {
	ss, ok := s.Session(clientID)
	if !ok {
		var err error
		if ss, err = s.StartSession(clientID); err != nil {
			return
		}
	}
	_ = ss.Push(d)
}

// HandleFail implements monitor.StreamHandler: a fail event flushes the
// session's current window and resets it for the client's next run.
func (s *Service) HandleFail(clientID string, tgen float64) {
	if ss, ok := s.Session(clientID); ok {
		_ = ss.EndRun()
	}
}

var _ monitor.StreamHandler = (*Service)(nil)

// enqueue queues one completed window on the session's shard for the
// next prediction batch, or sheds it under the ShedPolicy. The
// session's closed flag is re-checked under the shard lock: a push
// that raced the idle sweep past its own closed-check must not slip a
// window in after the sweep delivered the session's final snapshot.
// (Lock order sh.mu→ss.mu matches the sweep; no caller holds a
// session lock while acquiring a shard lock.)
func (s *Service) enqueue(ss *Session, tgen float64, row []float64, endRun bool) error {
	sh := ss.shard
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		return ErrServiceClosed
	}
	ss.mu.Lock()
	dead := ss.closed
	ss.mu.Unlock()
	if dead {
		sh.mu.Unlock()
		return ErrSessionClosed
	}
	if p := *s.shedPol.Load(); p.MaxQueueDepth > 0 && len(sh.pending) >= p.MaxQueueDepth && ss.priority < p.MinPriority {
		// Shed: counted under the shard lock, so the windows predicted
		// and the windows shed partition the accepted ones exactly —
		// and the per-priority breakdown (shedMu nests inside the
		// shard lock) always sums to the total.
		s.shedWindows.Add(1)
		s.shedMu.Lock()
		if s.shedByPrio == nil {
			s.shedByPrio = make(map[int]uint64)
		}
		s.shedByPrio[ss.priority]++
		s.shedMu.Unlock()
		depth := len(sh.pending)
		sh.mu.Unlock()
		if fn := s.cfg.shedFunc; fn != nil {
			fn(Shed{SessionID: ss.id, Priority: ss.priority, Tgen: tgen, QueueDepth: depth})
		}
		return ErrWindowShed
	}
	sh.pending = append(sh.pending, pendingRow{sess: ss, tgen: tgen, row: row, endRun: endRun})
	// Depth is incremented under the same lock the batch take
	// decrements under, so the global counter is a sum of per-shard
	// terms that are individually never negative — a concurrent Stats
	// read can never see a negative or double-counted depth.
	s.queueDepth.Add(1)
	sh.mu.Unlock()
	select {
	case sh.kick <- struct{}{}:
	default:
	}
	return nil
}

// dispatcher is one shard's batching loop: woken by enqueue, it
// predicts the shard's queued windows in one batch per registry
// snapshot, optionally coalescing for batchInterval first.
func (s *Service) dispatcher(sh *shard) {
	defer s.wg.Done()
	for {
		select {
		case <-s.ctx.Done():
			s.shutdownOnce.Do(s.shutdown)
			return
		case <-sh.kick:
		}
		if d := s.cfg.batchInterval; d > 0 {
			t := time.NewTimer(d)
			select {
			case <-s.ctx.Done():
				t.Stop()
				s.shutdownOnce.Do(s.shutdown)
				return
			case <-t.C:
			}
		}
		s.flushShard(sh)
	}
}

// shutdown runs exactly once, on the first dispatcher goroutine to see
// the cancelled context: it stops new enqueues shard by shard, drains
// the windows already queued everywhere — a clean shutdown never drops
// completed work — and closes every session.
func (s *Service) shutdown() {
	s.closed.Store(true)
	var sessions []*Session
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.closed = true
		for _, ss := range sh.sessions {
			sessions = append(sessions, ss)
		}
		sh.mu.Unlock()
	}
	s.Flush()
	for _, ss := range sessions {
		ss.markClosed()
	}
}

// Flush synchronously predicts every queued window on every shard.
// Sessions keep pushing concurrently; rows enqueued while a batch is
// in flight are picked up by the next iteration. Callbacks run on the
// calling goroutine.
func (s *Service) Flush() {
	for _, sh := range s.shards {
		s.flushShard(sh)
	}
}

// flushShard drains one shard's pending queue: per iteration it takes
// the queue, optionally coalesces neighbor queues into the same batch
// (CoalescePolicy), snapshots the registry, merges everything into one
// PredictBatch call, and delivers the estimates in enqueue order.
func (s *Service) flushShard(sh *shard) {
	sh.dispatchMu.Lock()
	defer sh.dispatchMu.Unlock()
	for s.dispatchOnce(sh) {
	}
}

// take moves up to limit pending rows (0 = all, oldest first) off sh's
// queue, publishing their sessions as in flight for the idle sweep.
// Everything happens under the shard's own lock — the same lock the
// enqueue-side depth increment, the shed check, and the sweep take —
// so the queue-depth counter and the shed accounting stay exact even
// when the taker is another shard's dispatcher (a coalescing thief).
func (s *Service) take(sh *shard, limit int) []pendingRow {
	sh.mu.Lock()
	rows := sh.pending
	if limit > 0 && limit < len(rows) {
		// Split takes copy the remainder so the taken prefix (capped at
		// its own length) never aliases the victim's future appends.
		rest := make([]pendingRow, len(rows)-limit)
		copy(rest, rows[limit:])
		sh.pending = rest
		rows = rows[:limit:limit]
	} else {
		sh.pending = nil
	}
	for i := range rows {
		sh.inflight[rows[i].sess]++
	}
	if len(rows) > 0 {
		s.queueDepth.Add(-int64(len(rows)))
	}
	sh.mu.Unlock()
	return rows
}

// release drops the in-flight marks take published, after the rows'
// estimates have been delivered.
func (s *Service) release(sh *shard, rows []pendingRow) {
	sh.mu.Lock()
	for i := range rows {
		if n := sh.inflight[rows[i].sess]; n <= 1 {
			delete(sh.inflight, rows[i].sess)
		} else {
			sh.inflight[rows[i].sess] = n - 1
		}
	}
	sh.mu.Unlock()
}

// segment is one shard's contribution to a (possibly coalesced) batch.
type segment struct {
	sh   *shard
	rows []pendingRow
}

// dispatchOnce takes and predicts one batch for sh, reporting whether
// there was anything to do. The caller holds sh.dispatchMu.
//
// When the CoalescePolicy is enabled and the shard's own take came up
// short of MinBatch, the dispatcher steals its neighbors' pending
// queues in ring order (own+1, own+2, …) into the same batch. Each
// steal try-locks the victim's dispatchMu and holds it until the
// merged batch is delivered: a busy victim is simply skipped (the
// thief never blocks behind a slow neighbor), and a robbed victim
// cannot start a competing batch over the same sessions, so
// per-session estimate order is preserved. The only blocking
// dispatchMu acquisition anywhere is a dispatcher taking its own, so
// the try-locks cannot deadlock. Under WithManualDispatch the whole
// dance runs on the single flushing goroutine in ring order —
// deterministic, so fleetsim replays it byte-identically.
func (s *Service) dispatchOnce(sh *shard) bool {
	pol := s.cfg.coalesce
	own := s.take(sh, pol.MaxBatch)
	if len(own) == 0 {
		return false
	}
	segs := []segment{{sh, own}}
	total := len(own)
	if pol.MinBatch > 0 && total < pol.MinBatch && len(s.shards) > 1 {
		defer func() {
			for _, seg := range segs[1:] {
				seg.sh.dispatchMu.Unlock()
			}
		}()
		myIdx := s.shardIndex(sh)
		for off := 1; off < len(s.shards) && total < pol.MinBatch; off++ {
			if pol.MaxBatch > 0 && total >= pol.MaxBatch {
				break
			}
			v := s.shards[(myIdx+off)%len(s.shards)]
			if !v.dispatchMu.TryLock() {
				continue
			}
			limit := 0
			if pol.MaxBatch > 0 {
				limit = pol.MaxBatch - total
			}
			rows := s.take(v, limit)
			if len(rows) == 0 {
				v.dispatchMu.Unlock()
				continue
			}
			segs = append(segs, segment{v, rows})
			total += len(rows)
		}
		if len(segs) > 1 {
			s.coalBatches.Add(1)
			s.coalWindows.Add(uint64(total - len(own)))
		}
	}
	if fn := s.cfg.batchFailpoint; fn != nil {
		fn(s.shardIndex(sh), total)
	}
	start := time.Now()
	// Snapshot the model AFTER the last take (own and stolen alike): a
	// Deploy that returned before any of these rows were enqueued is
	// necessarily visible here, so no row — stolen or not — is ever
	// predicted by a model older than the one current at its enqueue
	// time.
	mv := s.cur.Load()
	X := make([][]float64, 0, total)
	for _, seg := range segs {
		for i := range seg.rows {
			X = append(X, mv.project(seg.rows[i].row))
		}
	}
	out := ml.PredictAll(mv.dep.Model, X)
	k := 0
	for _, seg := range segs {
		for i := range seg.rows {
			est := Estimate{
				SessionID:    seg.rows[i].sess.id,
				Tgen:         seg.rows[i].tgen,
				RTTF:         out[k],
				ModelVersion: mv.version,
				ModelName:    mv.dep.Name,
			}
			k++
			s.deliver(seg.rows[i].sess, est)
			if seg.rows[i].endRun {
				seg.rows[i].sess.resetAlert()
			}
		}
		s.release(seg.sh, seg.rows)
	}
	s.lastBatchNs.Store(int64(time.Since(start)))
	s.lastBatchSize.Store(int64(total))
	return true
}

// deliver records an estimate on its session and fans it out to the
// configured consumers, raising an alert on a downward threshold
// crossing.
func (s *Service) deliver(ss *Session, est Estimate) {
	s.predictions.Add(1)
	crossed := ss.record(est, s.cfg.alertBelow)
	if fn := ss.onEstimate; fn != nil {
		fn(est)
	}
	if fn := s.cfg.estimateFunc; fn != nil {
		fn(est)
	}
	if crossed && s.cfg.alertFunc != nil {
		s.alerts.Add(1)
		s.cfg.alertFunc(Alert{Estimate: est, Threshold: s.cfg.alertBelow})
	}
}

// removeSession detaches a closed session from its shard.
func (s *Service) removeSession(ss *Session) {
	sh := ss.shard
	sh.mu.Lock()
	if cur, ok := sh.sessions[ss.id]; ok && cur == ss {
		delete(sh.sessions, ss.id)
		s.sessionCount.Add(-1)
	}
	sh.mu.Unlock()
}

// Close stops the service: the dispatchers drain queued windows and
// exit, sessions are closed, and further pushes fail with
// ErrServiceClosed. Close is idempotent and equivalent to cancelling
// the context given to New; it returns once the drain has finished.
func (s *Service) Close() error {
	s.cancel()
	s.wg.Wait()
	return nil
}
