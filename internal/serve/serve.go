// Package serve is the production serving layer of the F2PM
// reproduction (paper §III-E deployment, §I's proactive-rejuvenation
// loop): a PredictionService owns a versioned model registry and a set
// of per-client sessions, turns each client's live datapoint stream
// into aggregated feature rows, predicts Remaining Time To Failure in
// cross-session batches, and raises threshold-crossing alerts so an
// operator (or an automated rejuvenation action) can act before the
// failure.
//
// The pieces:
//
//   - Deployment: a trained model plus the feature subset and
//     aggregation config it was trained with (FromReport extracts it
//     from a pipeline report; modelio persists it).
//   - Service: the registry + dispatchers. Deploy atomically hot-swaps
//     the served model; rows already queued keep their ordering and
//     every row enqueued after Deploy returns is predicted by the new
//     model — never a stale one.
//   - Session: one monitored client. Push feeds datapoints through a
//     LiveAggregator; completed windows are queued for the next
//     prediction batch, so thousands of concurrent sessions amortize
//     the kernel/tree evaluation hot path.
//
// The hot path is sharded for fleet-scale client counts, and split
// across this package by layer: shard.go is the mechanism (session
// map slices, pending queues, the enqueue path, the idle-TTL sweep),
// dispatch.go the batch loop, coalesce.go the cross-shard batch
// stealing, and placement.go the policy — a pluggable Placer maps
// session ids onto shards (FNV hashing by default, WithPlacement to
// swap in the load-tracked placer) and Service.Rebalance physically
// migrates sessions off hot shards. Enqueue, prediction, and the
// idle-TTL sweep only ever take one shard's lock, so a sweep over
// 10⁵ sessions or a slow batch on one shard never stalls the others.
// Per-shard batches still merge all of that shard's sessions into one
// PredictBatch call over the same immutable registry snapshot, so the
// post-Deploy freshness guarantee holds shard by shard. Under
// sustained overload an optional ShedPolicy drops completed windows of
// low-priority sessions (WithSessionPriority) instead of queuing them,
// with exact shed accounting in Stats.
//
// A Service plugs directly into the FMS via monitor.WithStream, closing
// the loop monitor → aggregate → predict → act in one process.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/aggregate"
	"repro/internal/monitor"
	"repro/internal/trace"
)

// Sentinel errors of the serving layer.
var (
	// ErrServiceClosed is returned once the service's context is
	// cancelled or Close has run.
	ErrServiceClosed = errors.New("serve: service closed")
	// ErrSessionClosed is returned by operations on a closed session.
	ErrSessionClosed = errors.New("serve: session closed")
	// ErrTooManySessions is returned by StartSession past the
	// WithMaxSessions limit.
	ErrTooManySessions = errors.New("serve: session limit reached")
	// ErrNoModel means no deployment is available (no WithDeployment /
	// WithModelSource, or a report with no successful model).
	ErrNoModel = errors.New("serve: no model deployed")
	// ErrDuplicateSession is returned by StartSession for an id that is
	// already active.
	ErrDuplicateSession = errors.New("serve: session id already active")
	// ErrUnknownFeature means a deployment names a column the service's
	// aggregated layout does not produce.
	ErrUnknownFeature = errors.New("serve: unknown feature")
	// ErrAggregationMismatch means a deployment was trained under a
	// different windowing configuration than the service runs.
	ErrAggregationMismatch = errors.New("serve: deployment aggregation config differs from service")
	// ErrWindowShed is returned by Push/Flush/EndRun when the completed
	// window was dropped by the ShedPolicy: the session's shard is past
	// its queue-depth threshold and the session's priority is below the
	// policy's floor. The window is counted in Stats.ShedWindows and
	// will never be predicted.
	ErrWindowShed = errors.New("serve: window shed under overload")
)

// Estimate is one RTTF prediction for one session.
type Estimate struct {
	// SessionID names the monitored client.
	SessionID string
	// Tgen is the aggregated timestamp (elapsed seconds since the
	// client's system start) of the window the estimate is for.
	Tgen float64
	// RTTF is the predicted remaining time to failure, seconds.
	RTTF float64
	// ModelVersion and ModelName identify the registry entry that
	// produced the estimate (versions start at 1 and grow with every
	// Deploy).
	ModelVersion uint64
	ModelName    string
}

// Alert is an estimate that crossed the alert threshold from above —
// the "act now" signal of the paper's proactive-rejuvenation loop.
type Alert struct {
	Estimate
	// Threshold is the configured alert level, seconds.
	Threshold float64
}

// AlertFunc consumes threshold-crossing alerts.
type AlertFunc func(Alert)

// EstimateFunc consumes every emitted estimate.
type EstimateFunc func(Estimate)

// ModelSource supplies deployments on demand — the hook that connects
// the service to wherever fresh models come from (a retraining
// pipeline, a model file, a registry service).
type ModelSource interface {
	Deployment(ctx context.Context) (*Deployment, error)
}

// ModelSourceFunc adapts a function to ModelSource.
type ModelSourceFunc func(ctx context.Context) (*Deployment, error)

// Deployment implements ModelSource.
func (f ModelSourceFunc) Deployment(ctx context.Context) (*Deployment, error) { return f(ctx) }

// EvictedSession is the final snapshot of a session the idle-TTL sweep
// removed: its id, its last estimate (if it ever received one), and
// how many estimates it consumed — everything a spill-to-disk or
// audit hook needs, returned exactly once per eviction.
type EvictedSession struct {
	// ID names the monitored client the session belonged to.
	ID string
	// Last is the most recent estimate delivered to the session; only
	// meaningful when HasEstimate is true.
	Last Estimate
	// HasEstimate reports whether the session ever received an estimate.
	HasEstimate bool
	// Estimates counts the estimates the session received in total.
	Estimates uint64
}

// EvictFunc consumes evicted-session snapshots.
type EvictFunc func(EvictedSession)

// Shed describes one window dropped by the ShedPolicy — who lost it,
// not just that something was lost: the session, its priority, the
// window's aggregated timestamp, and the shard queue depth that
// triggered the drop. Delivered to the WithShedFunc hook and counted
// per priority in Stats.ShedByPriority, so operators (and fleetsim
// assertions) can verify that only below-floor sessions pay under
// overload.
type Shed struct {
	// SessionID names the session whose window was dropped.
	SessionID string
	// Priority is the session's load-shedding priority (below the
	// policy floor by construction).
	Priority int
	// Tgen is the aggregated timestamp of the dropped window.
	Tgen float64
	// QueueDepth is the shard's pending depth at the moment of the
	// drop (at or past the policy's MaxQueueDepth).
	QueueDepth int
}

// ShedFunc consumes shed-window notifications.
type ShedFunc func(Shed)

// Service is the prediction service: a versioned model registry, the
// sharded session set, the batching dispatchers, and the placement
// layer routing sessions onto shards. All methods are safe for
// concurrent use. The service stops — sessions refuse further pushes,
// the dispatchers drain and exit — when the context given to New is
// cancelled or Close is called.
type Service struct {
	cfg    config
	agg    aggregate.Config
	names  []string
	colIdx map[string]int

	ctx    context.Context
	cancel context.CancelFunc

	// now is the pluggable time source (WithClock; default time.Now):
	// activity stamps and the idle-TTL cutoff read scenario time from
	// it, so a virtual-clock harness controls eviction deterministically.
	now func() time.Time

	cur      atomic.Pointer[modelVersion]
	nextVer  atomic.Uint64
	deployMu sync.Mutex // serializes Deploy (version allocation + store)

	shards []*shard
	// placer is the placement policy (WithPlacement; default
	// HashPlacer): every shard lookup routes through it, and
	// Rebalance applies the migrations it proposes.
	placer Placer
	// closed flips before the per-shard closed flags: StartSession
	// checks it so no session can appear on a shard the shutdown pass
	// has not reached yet.
	closed       atomic.Bool
	shutdownOnce sync.Once
	wg           sync.WaitGroup

	// shedPol is the live shed policy: seeded from WithShedPolicy and
	// swappable at runtime via SetShedPolicy, so a supervisor can raise
	// or lower the floor under sustained overload without a restart.
	// Enqueue loads it once per window, so a swap takes effect on the
	// next completed window with no lock on the hot path.
	shedPol atomic.Pointer[ShedPolicy]

	// sessionCount is the global active-session count: reserved before
	// insert in StartSession so WithMaxSessions holds exactly across
	// shards without a global lock.
	sessionCount atomic.Int64
	queueDepth   atomic.Int64
	shedWindows  atomic.Uint64
	// shedByPrio breaks shedWindows down by session priority. Guarded
	// by shedMu (nested inside the shard lock on the shed path, so the
	// per-priority totals always sum to shedWindows exactly).
	shedMu          sync.Mutex
	shedByPrio      map[int]uint64
	predictions     atomic.Uint64
	alerts          atomic.Uint64
	evicted         atomic.Uint64
	migrations      atomic.Uint64
	refreshes       atomic.Uint64
	refreshFailures atomic.Uint64
	lastBatchNs     atomic.Int64
	lastBatchSize   atomic.Int64
	coalBatches     atomic.Uint64
	coalWindows     atomic.Uint64
}

// New builds and starts a prediction service. The initial model comes
// from WithDeployment or, failing that, from WithModelSource; one of
// the two is required. Cancelling ctx closes the service.
func New(ctx context.Context, opts ...Option) (*Service, error) {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.shards < 0 {
		return nil, fmt.Errorf("serve: WithShards(%d): shard count must be non-negative", cfg.shards)
	}
	if cfg.shed.MaxQueueDepth < 0 || cfg.shed.MinPriority < 0 {
		return nil, fmt.Errorf("serve: ShedPolicy fields must be non-negative: %+v", cfg.shed)
	}
	if cfg.coalesce.MinBatch < 0 || cfg.coalesce.MaxBatch < 0 {
		return nil, fmt.Errorf("serve: CoalescePolicy fields must be non-negative: %+v", cfg.coalesce)
	}
	if cfg.coalesce.MaxBatch > 0 && cfg.coalesce.MaxBatch < cfg.coalesce.MinBatch {
		return nil, fmt.Errorf("serve: CoalescePolicy MaxBatch %d below MinBatch %d", cfg.coalesce.MaxBatch, cfg.coalesce.MinBatch)
	}
	if cfg.placer == nil {
		cfg.placer = HashPlacer{}
	}
	dep := cfg.dep
	if dep == nil && cfg.source != nil {
		var err error
		if dep, err = cfg.source.Deployment(ctx); err != nil {
			return nil, fmt.Errorf("serve: pulling initial model: %w", err)
		}
	}
	if dep == nil || dep.Model == nil {
		return nil, ErrNoModel
	}
	if err := dep.Aggregation.Validate(); err != nil {
		return nil, fmt.Errorf("serve: deployment aggregation: %w", err)
	}
	la, err := aggregate.NewLiveAggregator(dep.Aggregation)
	if err != nil {
		return nil, err
	}
	names := la.ColNames()
	nShards := cfg.shards
	if nShards == 0 {
		nShards = runtime.GOMAXPROCS(0)
	}
	s := &Service{
		cfg:    cfg,
		agg:    dep.Aggregation,
		names:  names,
		colIdx: make(map[string]int, len(names)),
		shards: make([]*shard, nShards),
		placer: cfg.placer,
		now:    cfg.now,
	}
	if s.now == nil {
		s.now = time.Now
	}
	shed := cfg.shed
	s.shedPol.Store(&shed)
	for i := range s.shards {
		s.shards[i] = &shard{
			idx:      i,
			sessions: make(map[string]*Session),
			kick:     make(chan struct{}, 1),
		}
	}
	for i, n := range names {
		s.colIdx[n] = i
	}
	mv, err := newModelVersion(dep, s.colIdx)
	if err != nil {
		return nil, err
	}
	mv.version = s.nextVer.Add(1)
	s.cur.Store(mv)
	if cfg.refreshInterval > 0 && cfg.source == nil {
		return nil, fmt.Errorf("serve: WithRefreshInterval requires a ModelSource")
	}
	s.ctx, s.cancel = context.WithCancel(ctx)
	if cfg.manual {
		// Manual dispatch: no dispatchers, sweeper, or refresher — the
		// caller drives Flush/SweepIdleNow/Refresh. One watcher keeps
		// the shutdown contract: cancelling the context (or Close)
		// still drains every queued window exactly once.
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			<-s.ctx.Done()
			s.shutdownOnce.Do(s.shutdown)
		}()
		return s, nil
	}
	for _, sh := range s.shards {
		s.wg.Add(1)
		go s.dispatcher(sh)
	}
	if cfg.sessionTTL > 0 {
		s.wg.Add(1)
		go s.sweeper()
	}
	if cfg.refreshInterval > 0 {
		s.wg.Add(1)
		go s.refresher()
	}
	return s, nil
}

// refresher is the auto-refresh loop behind WithRefreshInterval: each
// tick pulls a deployment from the ModelSource and hot-swaps it; a
// failed pull keeps the current model and the next tick retries.
func (s *Service) refresher() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.refreshInterval)
	defer t.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-t.C:
			_, _ = s.Refresh(s.ctx)
		}
	}
}

// ColNames returns the full aggregated column layout sessions emit.
func (s *Service) ColNames() []string { return append([]string(nil), s.names...) }

// Aggregation returns the windowing configuration the service runs.
func (s *Service) Aggregation() aggregate.Config { return s.agg }

// ModelVersion returns the currently served registry version.
func (s *Service) ModelVersion() uint64 { return s.cur.Load().version }

// Deploy atomically hot-swaps the served model and returns the new
// registry version. The deployment must have been trained under the
// service's aggregation config (its feature subset may differ — the
// projection is rebuilt). In-flight batches finish with the model they
// snapshotted; every window enqueued after Deploy returns is predicted
// by the new model, on every shard: each shard snapshots the registry
// after taking its queue, so a row enqueued post-Deploy can only land
// in a batch whose snapshot already sees the new model.
func (s *Service) Deploy(dep *Deployment) (uint64, error) {
	if dep == nil || dep.Model == nil {
		return 0, ErrNoModel
	}
	if dep.Aggregation != s.agg {
		return 0, ErrAggregationMismatch
	}
	mv, err := newModelVersion(dep, s.colIdx)
	if err != nil {
		return 0, err
	}
	// Serialize concurrent deploys so a failed attempt never burns a
	// version and the served version never moves backwards.
	s.deployMu.Lock()
	defer s.deployMu.Unlock()
	mv.version = s.nextVer.Add(1)
	s.cur.Store(mv)
	return mv.version, nil
}

// SetShedPolicy hot-swaps the load-shedding policy. The change takes
// effect on the next completed window; windows already queued are
// unaffected. This is the overload actuator of the autonomic loop: a
// supervisor watching Stats.QueueDepth and ShedByPriority can tighten
// the floor under sustained overload and relax it once the queue
// drains, without restarting the service. The zero policy disables
// shedding.
func (s *Service) SetShedPolicy(p ShedPolicy) error {
	if p.MaxQueueDepth < 0 || p.MinPriority < 0 {
		return fmt.Errorf("serve: ShedPolicy fields must be non-negative: %+v", p)
	}
	s.shedPol.Store(&p)
	return nil
}

// ShedPolicy returns the currently active load-shedding policy.
func (s *Service) ShedPolicy() ShedPolicy { return *s.shedPol.Load() }

// Refresh pulls a fresh deployment from the configured ModelSource and
// hot-swaps it in, returning the new registry version. A source that
// hands back the same *Deployment it served last time is a no-op: the
// current version keeps serving and no registry version is burned, so
// an auto-refresh ticker over an unchanged model stays quiet.
func (s *Service) Refresh(ctx context.Context) (uint64, error) {
	if s.cfg.source == nil {
		return 0, fmt.Errorf("serve: Refresh without a ModelSource")
	}
	dep, err := s.cfg.source.Deployment(ctx)
	if err != nil {
		s.refreshFailures.Add(1)
		return 0, fmt.Errorf("serve: pulling model: %w", err)
	}
	if cur := s.cur.Load(); cur.origin == dep {
		return cur.version, nil
	}
	ver, err := s.Deploy(dep)
	if err == nil {
		s.refreshes.Add(1)
	}
	return ver, err
}

// HandleDatapoint implements monitor.StreamHandler: datapoints from the
// FMS stream feed the sender's session, which is auto-created on first
// contact (datapoints for clients beyond the session limit are
// dropped).
func (s *Service) HandleDatapoint(clientID string, d trace.Datapoint) {
	ss, ok := s.Session(clientID)
	if !ok {
		var err error
		if ss, err = s.StartSession(clientID); err != nil {
			return
		}
	}
	_ = ss.Push(d)
}

// HandleFail implements monitor.StreamHandler: a fail event flushes the
// session's current window and resets it for the client's next run.
func (s *Service) HandleFail(clientID string, tgen float64) {
	if ss, ok := s.Session(clientID); ok {
		_ = ss.EndRun()
	}
}

var _ monitor.StreamHandler = (*Service)(nil)

// Close stops the service: the dispatchers drain queued windows and
// exit, sessions are closed, and further pushes fail with
// ErrServiceClosed. Close is idempotent and equivalent to cancelling
// the context given to New; it returns once the drain has finished.
func (s *Service) Close() error {
	s.cancel()
	s.wg.Wait()
	return nil
}
