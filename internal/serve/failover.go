package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/ml/modelio"
	"repro/internal/monitor"
	"repro/internal/randx"
)

// ErrRegistryUnavailable wraps every failure of a FailoverSource's
// origin (network error, bad status, garbage envelope). When the
// source has a last-good deployment it keeps serving that instead of
// returning this error, so the sentinel only surfaces on a true cold
// start: no origin, no disk cache, nothing to serve.
var ErrRegistryUnavailable = errors.New("serve: model registry unavailable")

// SourceStatus is a ModelSource's view of its upstream — the staleness
// surface of the stale-while-revalidate failover path. A Service whose
// ModelSource implements StatusSource re-exports this through
// Stats.RegistryStale / RegistryStaleAge / RegistryLastError, so
// operators see "serving stale since X because Y" instead of silence.
type SourceStatus struct {
	// Stale reports that the most recent origin poll failed: the
	// deployments handed out since then are the last-good model, not a
	// fresh registry read. A node serving stale keeps predicting — that
	// is the point — but should be reconciled once the registry heals.
	Stale bool
	// StaleSince is when the current stale stretch began (zero when
	// fresh).
	StaleSince time.Time
	// LastError is the most recent origin failure (empty when fresh).
	LastError string
	// ETag identifies the last-good envelope, when the origin speaks
	// the registry's ETag protocol (empty otherwise).
	ETag string
	// Failures counts consecutive origin failures (0 when fresh).
	Failures int
	// BreakerOpen reports that the circuit breaker is holding probes
	// back; NextProbe is when the next origin attempt is allowed.
	BreakerOpen bool
	NextProbe   time.Time
	// CacheError is the most recent failure persisting or loading the
	// on-disk last-good cache (best-effort, never fatal).
	CacheError string
}

// StatusSource is a ModelSource that can report its upstream health.
// Service.Stats surfaces it; FailoverSource and HTTPModelSource
// implement it.
type StatusSource interface {
	ModelSource
	SourceStatus() SourceStatus
}

// FailoverConfig shapes a FailoverSource.
type FailoverConfig struct {
	// CacheFile, when non-empty, is where the last-good deployment
	// envelope is persisted (atomically: temp file + rename) and read
	// back on a cold start — a node that reboots during a registry
	// outage comes back serving its last-good model instead of failing
	// closed. Optional.
	CacheFile string
	// Backoff grows the circuit breaker's cooldown between probes once
	// the breaker is open: consecutive cooldowns follow the capped
	// exponential (with jitter from RNG). The zero value uses the
	// monitor defaults (250 ms base, 15 s cap, factor 2).
	Backoff monitor.Backoff
	// BreakerThreshold is how many consecutive origin failures open the
	// circuit breaker (default 3). While open, Deployment serves the
	// last-good model without touching the origin until the cooldown
	// expires — a dead registry is probed on the backoff schedule, not
	// hammered on every refresh tick.
	BreakerThreshold int
	// HealthyReset is how long the origin must stay healthy before the
	// breaker's backoff schedule rewinds to the base delay (default
	// 1 min; see monitor.BackoffState). A recovery shorter than this —
	// a flapping registry — keeps the escalated cooldown for the next
	// outage instead of re-probing at the base rate; sustained health
	// forgives it, so a genuinely new outage does not inherit the last
	// one's capped delay.
	HealthyReset time.Duration
	// RNG seeds the cooldown jitter so a fleet of nodes that lost the
	// same registry does not probe in lockstep. nil means no jitter —
	// fully deterministic, what seeded simulations want.
	RNG *randx.Source
	// Clock is the time source (default time.Now) — virtual-clock
	// harnesses inject theirs so breaker cooldowns follow scenario
	// time.
	Clock func() time.Time
}

// FailoverSource wraps any ModelSource with the robustness contract a
// serving node needs from its model-distribution path: keep serving.
//
//   - Success path: origin deployments pass through; each new one is
//     remembered as last-good and persisted to the on-disk cache.
//   - Stale-while-revalidate: when the origin fails (unreachable,
//     bad status, garbage envelope), Deployment returns the last-good
//     deployment with a nil error — the Service's refresh tick becomes
//     a no-op instead of a dropped model — and the staleness is
//     surfaced through SourceStatus.
//   - Circuit breaker: past BreakerThreshold consecutive failures the
//     origin is left alone until the (backoff-grown) cooldown expires,
//     so a dead registry is probed, not hammered.
//   - Cold-start cache: with no last-good in memory the on-disk cache
//     is loaded, so a node can boot — stale, and saying so — while the
//     registry is down.
//
// All methods are safe for concurrent use. Origin calls are
// serialized; SourceStatus never blocks behind a slow origin.
type FailoverSource struct {
	origin ModelSource
	cfg    FailoverConfig
	now    func() time.Time

	// fetchMu serializes origin probes so concurrent Refresh calls do
	// not stampede a struggling registry.
	fetchMu sync.Mutex

	// stateMu guards the failover state below. Never held across an
	// origin call, so SourceStatus (and Stats) stay responsive while a
	// probe hangs on a dead network.
	stateMu    sync.Mutex
	lastGood   *Deployment
	stale      bool
	staleSince time.Time
	lastErr    error
	failures   int
	retryAt    time.Time
	cacheErr   error
	cacheRead  bool

	// sched is the breaker's cooldown schedule. It outlives individual
	// outages (failures resets on success; sched rewinds only after
	// FailoverConfig.HealthyReset of sustained health), so a flapping
	// registry keeps its escalated cooldown between blips.
	sched monitor.BackoffState
}

// NewFailoverSource wraps origin with stale-while-revalidate failover,
// a circuit breaker, and the optional on-disk last-good cache.
func NewFailoverSource(origin ModelSource, cfg FailoverConfig) *FailoverSource {
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 3
	}
	fs := &FailoverSource{origin: origin, cfg: cfg, now: cfg.Clock}
	if fs.now == nil {
		fs.now = time.Now
	}
	fs.sched = monitor.BackoffState{Backoff: cfg.Backoff, HealthyReset: cfg.HealthyReset}
	return fs
}

// Deployment implements ModelSource: a fresh origin read when the
// origin is healthy (and the breaker allows a probe), the last-good
// deployment otherwise. It returns an error only when there is nothing
// to serve at all — no successful read yet and no usable disk cache.
func (fs *FailoverSource) Deployment(ctx context.Context) (*Deployment, error) {
	fs.fetchMu.Lock()
	defer fs.fetchMu.Unlock()

	fs.stateMu.Lock()
	open := fs.failures >= fs.cfg.BreakerThreshold && fs.now().Before(fs.retryAt)
	fs.stateMu.Unlock()
	if open {
		return fs.serveStale(nil)
	}

	dep, err := fs.origin.Deployment(ctx)
	if err == nil && (dep == nil || dep.Model == nil) {
		// A "successful" read with no model in it is garbage: treat it
		// like any other origin failure rather than dropping the served
		// model.
		err = ErrNoModel
	}
	if err == nil {
		fs.noteSuccess(dep)
		return dep, nil
	}
	fs.noteFailure(err)
	return fs.serveStale(err)
}

// noteSuccess records a healthy origin read: failover state resets
// (the cooldown schedule itself rewinds only after sustained health)
// and a new deployment is persisted to the cache.
func (fs *FailoverSource) noteSuccess(dep *Deployment) {
	fs.stateMu.Lock()
	changed := dep != fs.lastGood
	fs.lastGood = dep
	fs.stale = false
	fs.staleSince = time.Time{}
	fs.lastErr = nil
	fs.failures = 0
	fs.retryAt = time.Time{}
	fs.sched.Success(fs.now())
	fs.stateMu.Unlock()
	if changed && fs.cfg.CacheFile != "" {
		err := writeCacheFile(fs.cfg.CacheFile, dep)
		fs.stateMu.Lock()
		fs.cacheErr = err
		fs.stateMu.Unlock()
	}
}

// noteFailure records one origin failure and, past the threshold, arms
// the breaker with the backoff-grown cooldown.
func (fs *FailoverSource) noteFailure(err error) {
	now := fs.now()
	fs.stateMu.Lock()
	defer fs.stateMu.Unlock()
	fs.failures++
	fs.lastErr = err
	if !fs.stale {
		fs.stale = true
		fs.staleSince = now
	}
	if fs.failures >= fs.cfg.BreakerThreshold {
		// The schedule only advances while the breaker is armed, so
		// within one outage the cooldowns match the stateless
		// failures−threshold+1 walk — but the position survives a brief
		// recovery (monitor.BackoffState), so a flapping origin keeps
		// its escalated cooldown instead of being re-hammered.
		fs.retryAt = now.Add(fs.sched.Failure(now, fs.cfg.RNG))
	}
}

// serveStale hands out the last-good deployment (loading the disk
// cache on a cold start), or the wrapped origin error when there is
// truly nothing to serve.
func (fs *FailoverSource) serveStale(err error) (*Deployment, error) {
	fs.stateMu.Lock()
	dep := fs.lastGood
	tryCache := dep == nil && !fs.cacheRead && fs.cfg.CacheFile != ""
	if err == nil {
		err = fs.lastErr
	}
	fs.stateMu.Unlock()
	if tryCache {
		cached, cerr := readCacheFile(fs.cfg.CacheFile)
		fs.stateMu.Lock()
		fs.cacheRead = true
		if cerr != nil {
			fs.cacheErr = cerr
		} else if fs.lastGood == nil {
			fs.lastGood = cached
			dep = cached
		}
		fs.stateMu.Unlock()
	}
	if dep != nil {
		return dep, nil
	}
	if err == nil {
		err = ErrNoModel
	}
	return nil, fmt.Errorf("%w: %v", ErrRegistryUnavailable, err)
}

// SourceStatus implements StatusSource.
func (fs *FailoverSource) SourceStatus() SourceStatus {
	fs.stateMu.Lock()
	defer fs.stateMu.Unlock()
	st := SourceStatus{
		Stale:      fs.stale,
		StaleSince: fs.staleSince,
		Failures:   fs.failures,
	}
	if fs.lastErr != nil {
		st.LastError = fs.lastErr.Error()
	}
	if fs.cacheErr != nil {
		st.CacheError = fs.cacheErr.Error()
	}
	if fs.failures >= fs.cfg.BreakerThreshold {
		st.NextProbe = fs.retryAt
		st.BreakerOpen = fs.now().Before(fs.retryAt)
	}
	return st
}

// LastGood returns the current last-good deployment, if any — what the
// source would serve during an outage.
func (fs *FailoverSource) LastGood() (*Deployment, bool) {
	fs.stateMu.Lock()
	defer fs.stateMu.Unlock()
	return fs.lastGood, fs.lastGood != nil
}

// writeCacheFile persists the deployment envelope atomically: write to
// a temp file in the same directory, then rename over the target.
func writeCacheFile(path string, dep *Deployment) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".model-cache-*")
	if err != nil {
		return fmt.Errorf("serve: model cache: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := modelio.SaveWithMeta(tmp, dep.Model, dep.Meta()); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: model cache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("serve: model cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("serve: model cache: %w", err)
	}
	return nil
}

// readCacheFile restores the last-good deployment from the cache file.
func readCacheFile(path string) (*Deployment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("serve: model cache: %w", err)
	}
	defer f.Close()
	m, meta, err := modelio.LoadWithMeta(f)
	if err != nil {
		return nil, fmt.Errorf("serve: model cache %s: %w", path, err)
	}
	dep := &Deployment{Model: m, Name: m.Name()}
	if meta != nil {
		dep.Features = meta.Features
		if meta.Aggregation != nil {
			dep.Aggregation = *meta.Aggregation
		}
	}
	return dep, nil
}
