package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/testutil"
)

// TestShardedServingStress is the concurrency gate for the sharded
// dispatch path: ≥10⁴ sessions spread over 8 shards push windows from
// concurrent producers, with an atomic model hot-swap mid-stream. It
// asserts the shard hash spreads the session population, that without
// a ShedPolicy not a single completed window is dropped (exact
// prediction accounting), per-session version monotonicity, and that
// no window enqueued after the swap returned was predicted by the
// stale model — the PR 3 freshness invariant re-proven per shard. Run
// under -race.
func TestShardedServingStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const (
		numShards     = 8
		numSessions   = 10_000
		phase1Windows = 2
		phase2Windows = 2
		producers     = 16
	)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	type seen struct {
		mu     sync.Mutex
		events []Estimate
	}
	bySession := make([]seen, numSessions)
	est := func(e Estimate) {
		var idx int
		fmt.Sscanf(e.SessionID, "s-%d", &idx)
		s := &bySession[idx]
		s.mu.Lock()
		s.events = append(s.events, e)
		s.mu.Unlock()
	}

	svc, err := New(ctx,
		WithDeployment(&Deployment{Model: &stubModel{base: 1}, Name: "v1", Aggregation: rawAgg()}),
		WithShards(numShards),
		WithEstimateFunc(est),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if got := svc.Stats().Shards; got != numShards {
		t.Fatalf("stats shards %d, want %d", got, numShards)
	}

	sessions := make([]*Session, numSessions)
	for i := range sessions {
		ss, err := svc.StartSession(fmt.Sprintf("s-%05d", i))
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = ss
	}

	// Shard balance: the default hash placer must spread 10⁴ ids so no
	// shard holds more than twice (or less than half) its fair share —
	// otherwise "sharded" dispatch degenerates back to one queue. The
	// histogram comes from the placer itself (testutil.Spread), then a
	// spot check confirms the session maps agree with the placement.
	ids := make([]string, numSessions)
	for i := range ids {
		ids[i] = fmt.Sprintf("s-%05d", i)
	}
	fair := numSessions / numShards
	for i, n := range testutil.Spread(svc.placer.Place, ids, numShards) {
		if n < fair/2 || n > fair*2 {
			t.Fatalf("shard %d placed %d sessions, fair share is %d", i, n, fair)
		}
		sh := svc.shards[i]
		sh.mu.Lock()
		held := len(sh.sessions)
		sh.mu.Unlock()
		if held != n {
			t.Fatalf("shard %d holds %d sessions but the placer routed %d there", i, held, n)
		}
	}

	// push completes exactly one aggregation window per call after the
	// first: tgen strides one full window per step.
	var pushed atomic.Uint64
	phase := func(lo, hi int) {
		var wg sync.WaitGroup
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				for i := p; i < numSessions; i += producers {
					for w := lo; w < hi; w++ {
						if err := sessions[i].Push(dp(float64(w*10+1), float64(i%97))); err != nil {
							t.Errorf("session %d window %d: %v", i, w, err)
							return
						}
						if w > lo || lo > 0 {
							// every push but the very first of the run
							// completed the preceding window
							pushed.Add(1)
						}
					}
				}
			}(p)
		}
		wg.Wait()
	}

	// Phase 1 under v1: windows 0..phase1Windows-1 complete.
	phase(0, phase1Windows+1)
	waitFor(t, func() bool { return svc.Stats().Predictions >= uint64(numSessions*phase1Windows) })

	swapVer, err := svc.Deploy(&Deployment{Model: &stubModel{base: 1000}, Name: "v2", Aggregation: rawAgg()})
	if err != nil {
		t.Fatal(err)
	}

	// Phase 2: every window here is enqueued strictly after Deploy
	// returned, so every estimate must carry v2 on whichever shard it
	// landed.
	phase(phase1Windows+1, phase1Windows+1+phase2Windows)
	const perSession = phase1Windows + phase2Windows
	waitFor(t, func() bool { return svc.Stats().Predictions >= uint64(numSessions*perSession) })

	if got, want := svc.Stats().Predictions, uint64(numSessions*perSession); got != want {
		t.Fatalf("%d predictions, want exactly %d", got, want)
	}
	if got, want := pushed.Load(), uint64(numSessions*perSession); got != want {
		t.Fatalf("accounting bug in the test driver: pushed %d, want %d", got, want)
	}
	for i := range bySession {
		s := &bySession[i]
		s.mu.Lock()
		events := s.events
		s.mu.Unlock()
		if len(events) != perSession {
			t.Fatalf("session %d: %d estimates, want %d", i, len(events), perSession)
		}
		prev := uint64(0)
		for j, e := range events {
			if e.ModelVersion < prev {
				t.Fatalf("session %d: version went backwards at estimate %d", i, j)
			}
			prev = e.ModelVersion
			if j >= phase1Windows && e.ModelVersion != swapVer {
				t.Fatalf("session %d: estimate %d predicted by stale model v%d after swap to v%d",
					i, j, e.ModelVersion, swapVer)
			}
		}
	}

	st := svc.Stats()
	if st.QueueDepth != 0 {
		t.Fatalf("queue depth %d after drain", st.QueueDepth)
	}
	if st.ShedWindows != 0 {
		t.Fatalf("%d windows shed with no ShedPolicy", st.ShedWindows)
	}
	if st.Sessions != numSessions {
		t.Fatalf("stats sessions %d, want %d", st.Sessions, numSessions)
	}

	// Drain-on-Close still holds with N dispatchers: windows completed
	// just before cancellation are predicted, not dropped.
	for i := 0; i < producers; i++ {
		if err := sessions[i].Push(dp(float64((perSession+1)*10+1), 1)); err != nil {
			t.Fatal(err)
		}
	}
	cancel()
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if got, want := svc.Stats().Predictions, uint64(numSessions*perSession+producers); got != want {
		t.Fatalf("after close: %d predictions, want %d (shutdown dropped completed windows)", got, want)
	}
}

// TestShedPolicyExactAccounting pins the load shedder's contract:
// under a ShedPolicy every completed window is either predicted
// exactly once or counted in Stats.ShedWindows exactly once (the sets
// partition), sessions at or above the priority floor are never shed,
// and with the queue held over the threshold the sheddable sessions
// actually lose windows. Run under -race.
func TestShedPolicyExactAccounting(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	const (
		numSessions = 64
		windows     = 40
	)
	var estimates atomic.Uint64
	svc, err := New(ctx,
		WithDeployment(&Deployment{Model: &stubModel{base: 1}, Name: "v1", Aggregation: rawAgg()}),
		WithShards(4),
		// Tiny per-shard depth + a coalescing interval keep the queue
		// over the threshold while producers are faster than dispatch.
		WithShedPolicy(ShedPolicy{MaxQueueDepth: 2, MinPriority: 1}),
		WithBatchInterval(200*time.Microsecond),
		WithEstimateFunc(func(Estimate) { estimates.Add(1) }),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	var queued, shed atomic.Uint64
	var wg sync.WaitGroup
	for c := 0; c < numSessions; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			prio := c % 2 // odd sessions sit at the floor: never shed
			ss, err := svc.StartSession(fmt.Sprintf("c-%03d", c), WithSessionPriority(prio))
			if err != nil {
				t.Error(err)
				return
			}
			for w := 0; w <= windows; w++ {
				err := ss.Push(dp(float64(w*10+1), float64(c)))
				switch {
				case err == nil:
					if w > 0 {
						queued.Add(1)
					}
				case errors.Is(err, ErrWindowShed):
					if prio >= 1 {
						t.Errorf("session %d at the priority floor was shed", c)
						return
					}
					shed.Add(1)
				default:
					t.Errorf("session %d: %v", c, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	svc.Flush()

	st := svc.Stats()
	if st.ShedWindows != shed.Load() {
		t.Fatalf("stats ShedWindows %d, callers saw %d ErrWindowShed", st.ShedWindows, shed.Load())
	}
	if shed.Load() == 0 {
		t.Fatal("no window was ever shed — the overload went unexercised")
	}
	if got, want := estimates.Load(), queued.Load(); got != want {
		t.Fatalf("%d estimates for %d accepted windows (shed ones must not be predicted, accepted ones never dropped)", got, want)
	}
	if st.Predictions != estimates.Load() {
		t.Fatalf("stats predictions %d vs %d deliveries", st.Predictions, estimates.Load())
	}
	if st.QueueDepth != 0 {
		t.Fatalf("queue depth %d after drain", st.QueueDepth)
	}
}

// TestShardedSweepEviction re-proves the PR 4 eviction invariants on
// the sharded session map: an aggressive TTL sweep walking one shard
// at a time still never drops a queued window, never double-delivers
// an evict snapshot, and keeps the eviction counter equal to the hook
// deliveries. Run under -race.
func TestShardedSweepEviction(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	const clients = 48
	const windows = 4
	var estimates, hookCalls atomic.Uint64
	svc, err := New(ctx,
		WithDeployment(&Deployment{Model: &stubModel{base: 1}, Name: "v1", Aggregation: rawAgg()}),
		WithShards(4),
		WithSessionTTL(2*time.Millisecond),
		WithSessionEvictFunc(func(EvictedSession) { hookCalls.Add(1) }),
		WithEstimateFunc(func(Estimate) { estimates.Add(1) }),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	var wg sync.WaitGroup
	var pushed atomic.Uint64
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			id := fmt.Sprintf("c-%d", c)
			done := 0
			tg := 0.0
			for done < windows {
				ss, err := svc.StartSession(id)
				if errors.Is(err, ErrDuplicateSession) {
					var ok bool
					if ss, ok = svc.Session(id); !ok {
						continue
					}
				} else if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				if ss.Push(dp(tg, float64(c))) != nil {
					continue // evicted mid-window: start over
				}
				tg += 10
				if ss.Push(dp(tg, float64(c))) != nil {
					continue
				}
				pushed.Add(1)
				done++
				if done%2 == 0 {
					time.Sleep(3 * time.Millisecond) // let the sweep catch some
				}
			}
		}(c)
	}
	wg.Wait()

	waitFor(t, func() bool { return estimates.Load() >= pushed.Load() })
	time.Sleep(20 * time.Millisecond) // would catch duplicates arriving late
	if got, want := estimates.Load(), pushed.Load(); got != want {
		t.Fatalf("%d estimates for %d accepted windows", got, want)
	}
	st := svc.Stats()
	if st.EvictedSessions != hookCalls.Load() {
		t.Fatalf("evicted counter %d vs %d hook deliveries", st.EvictedSessions, hookCalls.Load())
	}
	if st.EvictedSessions == 0 {
		t.Fatal("aggressive TTL evicted nothing — the race went unexercised")
	}
	if st.QueueDepth != 0 {
		t.Fatalf("queue depth %d after drain", st.QueueDepth)
	}
}
