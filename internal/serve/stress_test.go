package serve

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/aggregate"
	"repro/internal/monitor"
	"repro/internal/trace"
)

// TestServingStress drives ≥100 simultaneous monitor clients over real
// TCP through a PredictionService attached to the FMS, with an atomic
// model hot-swap mid-stream. It asserts exact event accounting (zero
// dropped datapoints, windows, or estimates), per-session version
// monotonicity, and that no estimate enqueued after the swap completed
// was produced by the stale model. Run under -race this is the
// concurrency gate for the serving layer.
func TestServingStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const (
		numClients    = 120
		phase1Windows = 19 // Tgen 0..19, 1s windows: 19 completed windows
		phase2Windows = 21 // Tgen 20..39 completes 20 more + EndRun flush
		perClient     = phase1Windows + phase2Windows
	)
	agg := aggregate.Config{WindowSec: 1}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	type tagged struct {
		est Estimate
	}
	var mu sync.Mutex
	bySession := make(map[string][]tagged)
	est := func(e Estimate) {
		mu.Lock()
		bySession[e.SessionID] = append(bySession[e.SessionID], tagged{est: e})
		mu.Unlock()
	}

	svc, err := New(ctx,
		WithDeployment(&Deployment{Model: &stubModel{base: 1}, Name: "v1", Aggregation: agg}),
		WithEstimateFunc(est),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	srv, err := monitor.NewServer("127.0.0.1:0", monitor.WithStream(svc), monitor.WithServerContext(ctx))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Connect all clients first so the sessions run concurrently.
	clients := make([]*monitor.Client, numClients)
	for i := range clients {
		c, err := monitor.DialContext(ctx, srv.Addr(), fmt.Sprintf("vm-%03d", i))
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
		defer c.Close()
	}

	send := func(lo, hi int) {
		var wg sync.WaitGroup
		for i, c := range clients {
			wg.Add(1)
			go func(i int, c *monitor.Client) {
				defer wg.Done()
				for tg := lo; tg < hi; tg++ {
					var d trace.Datapoint
					d.Tgen = float64(tg)
					d.Features[trace.NumThreads] = float64(i)
					if err := c.SendDatapoint(&d); err != nil {
						t.Errorf("client %d: %v", i, err)
						return
					}
				}
			}(i, c)
		}
		wg.Wait()
	}

	waitPredictions := func(want uint64) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for {
			if got := svc.Stats().Predictions; got >= want {
				if got > want {
					t.Fatalf("%d predictions, want exactly %d — duplicated events", got, want)
				}
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("timed out: %d predictions, want %d — dropped events",
					svc.Stats().Predictions, want)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Phase 1 under model v1.
	send(0, 20)
	waitPredictions(numClients * phase1Windows)

	// Hot-swap: after Deploy returns, every estimate for a window
	// enqueued from here on must carry version 2.
	swapVer, err := svc.Deploy(&Deployment{Model: &stubModel{base: 2}, Name: "v2", Aggregation: agg})
	if err != nil {
		t.Fatal(err)
	}
	if swapVer != 2 {
		t.Fatalf("swap version %d, want 2", swapVer)
	}

	// Phase 2 under model v2, ending every run with a fail event (the
	// final partial window must still be predicted — no dropped final
	// datapoints).
	send(20, 40)
	var wg sync.WaitGroup
	for _, c := range clients {
		wg.Add(1)
		go func(c *monitor.Client) {
			defer wg.Done()
			if err := c.SendFail(39); err != nil {
				t.Error(err)
			}
		}(c)
	}
	wg.Wait()
	waitPredictions(numClients * perClient)

	// Exact accounting and version discipline per session.
	mu.Lock()
	defer mu.Unlock()
	if len(bySession) != numClients {
		t.Fatalf("%d sessions saw estimates, want %d", len(bySession), numClients)
	}
	for id, events := range bySession {
		if len(events) != perClient {
			t.Fatalf("session %s: %d estimates, want %d", id, len(events), perClient)
		}
		prev := uint64(0)
		for i, ev := range events {
			v := ev.est.ModelVersion
			if v < prev {
				t.Fatalf("session %s: version went backwards at estimate %d (%d after %d)", id, i, v, prev)
			}
			prev = v
			if i < phase1Windows {
				continue // pre-swap estimates may be v1 or v2 is impossible; they are v1
			}
			if v != swapVer {
				t.Fatalf("session %s: estimate %d predicted by stale model v%d after swap to v%d",
					id, i, v, swapVer)
			}
			if want := 2.0 + float64(sessionIndex(id)); ev.est.RTTF != want {
				t.Fatalf("session %s: post-swap RTTF %v, want %v", id, ev.est.RTTF, want)
			}
		}
	}

	// Backpressure observability: after the drain the queue is empty,
	// the batch telemetry reflects real work, and the lifecycle
	// counters are exact (no evictions configured here — TTL is off).
	st := svc.Stats()
	if st.QueueDepth != 0 {
		t.Fatalf("queue depth %d after drain", st.QueueDepth)
	}
	if st.Predictions != numClients*perClient {
		t.Fatalf("stats predictions %d, want %d", st.Predictions, numClients*perClient)
	}
	if st.Sessions != numClients {
		t.Fatalf("stats sessions %d, want %d", st.Sessions, numClients)
	}
	if st.LastBatchSize <= 0 || st.LastBatchLatency <= 0 {
		t.Fatalf("batch telemetry missing: size %d latency %v", st.LastBatchSize, st.LastBatchLatency)
	}
	if st.EvictedSessions != 0 || st.Refreshes != 0 {
		t.Fatalf("spurious lifecycle counters: %+v", st)
	}
	if st.ModelVersion != swapVer {
		t.Fatalf("stats model version %d, want %d", st.ModelVersion, swapVer)
	}

	// Cancelling the service context stops sessions and the monitor
	// server promptly.
	cancel()
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { srv.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("monitor server did not close promptly after context cancellation")
	}
	for _, id := range svc.Sessions() {
		ss, ok := svc.Session(id)
		if !ok {
			continue
		}
		var d trace.Datapoint
		d.Tgen = 100
		if err := ss.Push(d); err == nil {
			t.Fatalf("session %s still accepts pushes after cancellation", id)
		}
	}
}

// sessionIndex parses the numeric suffix of a vm-### session id.
func sessionIndex(id string) int {
	var n int
	fmt.Sscanf(id, "vm-%d", &n)
	return n
}
