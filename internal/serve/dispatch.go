package serve

import (
	"time"

	"repro/internal/ml"
)

// dispatcher is one shard's batching loop: woken by enqueue, it
// predicts the shard's queued windows in one batch per registry
// snapshot, optionally coalescing for batchInterval first.
func (s *Service) dispatcher(sh *shard) {
	defer s.wg.Done()
	for {
		select {
		case <-s.ctx.Done():
			s.shutdownOnce.Do(s.shutdown)
			return
		case <-sh.kick:
		}
		if d := s.cfg.batchInterval; d > 0 {
			t := time.NewTimer(d)
			select {
			case <-s.ctx.Done():
				t.Stop()
				s.shutdownOnce.Do(s.shutdown)
				return
			case <-t.C:
			}
		}
		s.flushShard(sh)
	}
}

// shutdown runs exactly once, on the first dispatcher goroutine to see
// the cancelled context: it stops new enqueues shard by shard, drains
// the windows already queued everywhere — a clean shutdown never drops
// completed work — and closes every session.
func (s *Service) shutdown() {
	s.closed.Store(true)
	var sessions []*Session
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.closed = true
		for _, ss := range sh.sessions {
			sessions = append(sessions, ss)
		}
		sh.mu.Unlock()
	}
	s.Flush()
	for _, ss := range sessions {
		ss.markClosed()
	}
}

// Flush synchronously predicts every queued window on every shard.
// Sessions keep pushing concurrently; rows enqueued while a batch is
// in flight are picked up by the next iteration. Callbacks run on the
// calling goroutine.
func (s *Service) Flush() {
	for _, sh := range s.shards {
		s.flushShard(sh)
	}
}

// flushShard drains one shard's pending queue: per iteration it takes
// the queue, optionally coalesces neighbor queues into the same batch
// (CoalescePolicy), snapshots the registry, merges everything into one
// PredictBatch call, and delivers the estimates in enqueue order.
func (s *Service) flushShard(sh *shard) {
	sh.dispatchMu.Lock()
	defer sh.dispatchMu.Unlock()
	for s.dispatchOnce(sh) {
	}
}

// segment is one shard's contribution to a (possibly coalesced) batch.
type segment struct {
	sh   *shard
	rows []pendingRow
}

// dispatchOnce takes and predicts one batch for sh, reporting whether
// there was anything to do. The caller holds sh.dispatchMu, and holds
// it until delivery completes — together with the thief protocol in
// coalesce.go and the migration protocol in placement.go this is the
// load-bearing guarantee that "dispatchMu held" implies "no window
// taken from this shard is awaiting delivery".
func (s *Service) dispatchOnce(sh *shard) bool {
	pol := s.cfg.coalesce
	own := s.take(sh, pol.MaxBatch)
	if len(own) == 0 {
		return false
	}
	segs := []segment{{sh, own}}
	total := len(own)
	if pol.MinBatch > 0 && total < pol.MinBatch && len(s.shards) > 1 {
		segs, total = s.steal(sh, segs, total, pol)
		// Victims' dispatch mutexes stay held until their segments'
		// estimates are delivered below.
		defer unlockVictims(segs)
	}
	if fn := s.cfg.batchFailpoint; fn != nil {
		fn(sh.idx, total)
	}
	start := time.Now()
	// Snapshot the model AFTER the last take (own and stolen alike): a
	// Deploy that returned before any of these rows were enqueued is
	// necessarily visible here, so no row — stolen or not — is ever
	// predicted by a model older than the one current at its enqueue
	// time.
	mv := s.cur.Load()
	X := make([][]float64, 0, total)
	for _, seg := range segs {
		for i := range seg.rows {
			X = append(X, mv.project(seg.rows[i].row))
		}
	}
	out := ml.PredictAll(mv.dep.Model, X)
	k := 0
	for _, seg := range segs {
		for i := range seg.rows {
			est := Estimate{
				SessionID:    seg.rows[i].sess.id,
				Tgen:         seg.rows[i].tgen,
				RTTF:         out[k],
				ModelVersion: mv.version,
				ModelName:    mv.dep.Name,
			}
			k++
			s.deliver(seg.rows[i].sess, est)
			if seg.rows[i].endRun {
				seg.rows[i].sess.resetAlert()
			}
		}
		release(seg.rows)
	}
	s.lastBatchNs.Store(int64(time.Since(start)))
	s.lastBatchSize.Store(int64(total))
	return true
}

// deliver records an estimate on its session and fans it out to the
// configured consumers, raising an alert on a downward threshold
// crossing.
func (s *Service) deliver(ss *Session, est Estimate) {
	s.predictions.Add(1)
	crossed := ss.record(est, s.cfg.alertBelow)
	if fn := ss.onEstimate; fn != nil {
		fn(est)
	}
	if fn := s.cfg.estimateFunc; fn != nil {
		fn(est)
	}
	if crossed && s.cfg.alertFunc != nil {
		s.alerts.Add(1)
		s.cfg.alertFunc(Alert{Estimate: est, Threshold: s.cfg.alertBelow})
	}
}
