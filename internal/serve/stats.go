package serve

import (
	"time"
)

// Stats is a snapshot of service counters — the backpressure and
// lifecycle observability surface: queue depth says how far the
// dispatchers are behind, last-batch latency/size say what each
// dispatch costs, the eviction/refresh/shed counters expose the
// background loops and the load shedder, and the per-shard loads
// expose the placement layer.
type Stats struct {
	// Sessions is the number of currently active sessions.
	Sessions int
	// Shards is the number of dispatch shards the service runs.
	Shards int
	// Predictions counts estimates emitted since New.
	Predictions uint64
	// Alerts counts threshold crossings since New.
	Alerts uint64
	// ModelVersion is the currently served registry version.
	ModelVersion uint64
	// QueueDepth is the number of completed windows waiting for their
	// next prediction batch, summed over all shards. The counter is
	// maintained atomically under the shard locks, so a snapshot taken
	// mid-sweep or mid-batch is never negative and never double-counts
	// a window. Persistent growth means the service is past its
	// sustainable load — the backpressure signal the ShedPolicy acts
	// on.
	QueueDepth int
	// ShedWindows counts completed windows dropped by the ShedPolicy
	// since New. Every completed window is either predicted exactly
	// once or counted here exactly once — the two never overlap.
	ShedWindows uint64
	// ShedByPriority breaks ShedWindows down by the shedding session's
	// priority — who lost windows, not just how many. The map is a
	// fresh copy per Stats call (nil when nothing was ever shed); its
	// values always sum to ShedWindows, and under a correctly
	// configured policy every key is below the policy's MinPriority
	// floor.
	ShedByPriority map[int]uint64
	// EvictedSessions counts idle-TTL session evictions since New.
	EvictedSessions uint64
	// Refreshes counts successful ModelSource hot-swaps since New
	// (both auto-refresh ticks and explicit Refresh calls).
	Refreshes uint64
	// RefreshFailures counts ModelSource pulls that returned an error.
	// A failed pull never drops or regresses the served model — the
	// current deployment keeps serving and the next tick retries — so
	// this counter plus RegistryStale is how refresh trouble surfaces.
	RefreshFailures uint64
	// RegistryStale reports that the service's ModelSource is serving
	// its last-good deployment because the upstream registry is
	// unreachable or returning garbage (stale-while-revalidate
	// failover). Predictions keep flowing from the last-good model; the
	// flag, RegistryStaleAge, and RegistryLastError say so out loud.
	// Only populated when the ModelSource implements StatusSource
	// (FailoverSource, HTTPModelSource).
	RegistryStale bool
	// RegistryStaleAge is how long the source has been serving stale
	// (zero when fresh), on the service clock.
	RegistryStaleAge time.Duration
	// RegistryLastError is the most recent upstream failure (empty when
	// fresh).
	RegistryLastError string
	// CoalescedBatches counts prediction batches that merged at least
	// one stolen neighbor window under the CoalescePolicy, and
	// CoalescedWindows counts the stolen windows themselves. Together
	// with LastBatchSize they show the coalescer doing its job: at
	// light fleet-wide load CoalescedBatches grows and batches get
	// larger; under per-shard load both counters stay flat because
	// every shard's own take already reaches MinBatch.
	CoalescedBatches uint64
	CoalescedWindows uint64
	// ShardLoads is the per-shard load table — session count, pending
	// depth, and cumulative enqueued windows per shard, in shard
	// order. Differencing successive snapshots' Windows fields gives
	// per-shard window rates; the skew across them is what a
	// load-tracked Placer (and the autonomic SkewPolicy riding it)
	// acts on.
	ShardLoads []ShardLoad
	// Migrations counts sessions the placement layer actually moved
	// between shards (Service.Rebalance) since New.
	Migrations uint64
	// LastBatchLatency is the wall time of the most recent prediction
	// batch (on any shard), and LastBatchSize its window count.
	LastBatchLatency time.Duration
	LastBatchSize    int
}

// Stats returns a snapshot of the service counters. Every scalar field
// is read from an atomic (the per-priority shed map takes only its own
// small mutex, and the per-shard load table one shard lock at a time —
// never a global lock), so Stats never contends with the hot path and
// a snapshot taken mid-sweep or mid-batch is internally consistent:
// the queue depth is the exact sum over shards (never negative, never
// double-counted) and the shed/prediction counters partition the
// completed windows.
func (s *Service) Stats() Stats {
	var byPrio map[int]uint64
	s.shedMu.Lock()
	if len(s.shedByPrio) > 0 {
		byPrio = make(map[int]uint64, len(s.shedByPrio))
		for p, n := range s.shedByPrio {
			byPrio[p] = n
		}
	}
	s.shedMu.Unlock()
	out := Stats{
		ShedByPriority:   byPrio,
		Sessions:         int(s.sessionCount.Load()),
		Shards:           len(s.shards),
		Predictions:      s.predictions.Load(),
		Alerts:           s.alerts.Load(),
		ModelVersion:     s.cur.Load().version,
		QueueDepth:       int(s.queueDepth.Load()),
		ShedWindows:      s.shedWindows.Load(),
		EvictedSessions:  s.evicted.Load(),
		Refreshes:        s.refreshes.Load(),
		RefreshFailures:  s.refreshFailures.Load(),
		CoalescedBatches: s.coalBatches.Load(),
		CoalescedWindows: s.coalWindows.Load(),
		ShardLoads:       s.shardLoads(),
		Migrations:       s.migrations.Load(),
		LastBatchLatency: time.Duration(s.lastBatchNs.Load()),
		LastBatchSize:    int(s.lastBatchSize.Load()),
	}
	// Staleness ride-along: a StatusSource (FailoverSource,
	// HTTPModelSource) reports whether the deployments it hands out are
	// fresh registry reads or the last-good failover copy. The source's
	// own small mutex is the only lock involved — never a shard lock.
	if sr, ok := s.cfg.source.(StatusSource); ok {
		st := sr.SourceStatus()
		out.RegistryStale = st.Stale
		out.RegistryLastError = st.LastError
		if st.Stale && !st.StaleSince.IsZero() {
			if age := s.now().Sub(st.StaleSince); age > 0 {
				out.RegistryStaleAge = age
			}
		}
	}
	return out
}
