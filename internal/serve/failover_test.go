package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ml/linreg"
	"repro/internal/monitor"
)

// flakySource is a scriptable origin: each Deployment call pops the
// next step (a deployment or an error) and counts probes.
type flakySource struct {
	mu     sync.Mutex
	steps  []any // *Deployment or error
	probes int
}

func (f *flakySource) Deployment(context.Context) (*Deployment, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.probes++
	if len(f.steps) == 0 {
		return nil, errors.New("script exhausted")
	}
	step := f.steps[0]
	f.steps = f.steps[1:]
	switch s := step.(type) {
	case *Deployment:
		return s, nil
	case error:
		return nil, s
	}
	panic("bad step")
}

func (f *flakySource) probeCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.probes
}

func stubDep(base float64) *Deployment {
	return &Deployment{Model: &stubModel{base: base}, Name: "stub", Aggregation: rawAgg()}
}

// linregDep builds a deployment around a real serializable model — the
// kind the on-disk cache can round-trip.
func linregDep(t *testing.T) *Deployment {
	t.Helper()
	m := linreg.New()
	if err := m.Fit([][]float64{{1}, {2}, {3}}, []float64{2, 4, 6}); err != nil {
		t.Fatal(err)
	}
	return &Deployment{Model: m, Name: "linear", Features: []string{"n_threads"}, Aggregation: rawAgg()}
}

func TestFailoverStaleWhileRevalidate(t *testing.T) {
	depA, depB := stubDep(1), stubDep(2)
	origin := &flakySource{steps: []any{
		depA,
		errors.New("connection refused"),
		errors.New("connection refused"),
		depB,
	}}
	fs := NewFailoverSource(origin, FailoverConfig{BreakerThreshold: 10})
	ctx := context.Background()

	got, err := fs.Deployment(ctx)
	if err != nil || got != depA {
		t.Fatalf("healthy read = %v, %v; want depA", got, err)
	}
	if st := fs.SourceStatus(); st.Stale {
		t.Fatalf("fresh source reports stale: %+v", st)
	}

	// Two failing polls: same pointer back, nil error, staleness
	// surfaced — the Service refresh stays a silent no-op.
	for i := 0; i < 2; i++ {
		got, err = fs.Deployment(ctx)
		if err != nil || got != depA {
			t.Fatalf("stale read %d = %v, %v; want last-good depA with nil error", i, got, err)
		}
	}
	st := fs.SourceStatus()
	if !st.Stale || st.Failures != 2 || st.LastError == "" {
		t.Fatalf("stale status = %+v, want stale with 2 failures", st)
	}

	// Recovery: the fresh deployment flows through and staleness clears.
	got, err = fs.Deployment(ctx)
	if err != nil || got != depB {
		t.Fatalf("recovered read = %v, %v; want depB", got, err)
	}
	if st := fs.SourceStatus(); st.Stale || st.Failures != 0 {
		t.Fatalf("recovered status = %+v, want fresh", st)
	}
}

func TestFailoverColdStartNoCacheFails(t *testing.T) {
	origin := &flakySource{steps: []any{errors.New("down")}}
	fs := NewFailoverSource(origin, FailoverConfig{})
	if _, err := fs.Deployment(context.Background()); !errors.Is(err, ErrRegistryUnavailable) {
		t.Fatalf("cold start with nothing to serve: err = %v, want ErrRegistryUnavailable", err)
	}
}

func TestFailoverGarbageOriginKeepsLastGood(t *testing.T) {
	dep := stubDep(1)
	origin := &flakySource{steps: []any{dep, (*Deployment)(nil), &Deployment{}}}
	fs := NewFailoverSource(origin, FailoverConfig{BreakerThreshold: 10})
	ctx := context.Background()
	if _, err := fs.Deployment(ctx); err != nil {
		t.Fatal(err)
	}
	// A nil deployment and a deployment with no model are both garbage:
	// the last-good keeps serving.
	for i := 0; i < 2; i++ {
		got, err := fs.Deployment(ctx)
		if err != nil || got != dep {
			t.Fatalf("garbage read %d = %v, %v; want last-good", i, got, err)
		}
	}
	if st := fs.SourceStatus(); !st.Stale || st.Failures != 2 {
		t.Fatalf("status after garbage reads = %+v, want stale with 2 failures", st)
	}
}

func TestFailoverCircuitBreaker(t *testing.T) {
	now := time.Unix(1_000_000, 0)
	clock := func() time.Time { return now }
	dep := stubDep(1)
	origin := &flakySource{steps: []any{
		dep,
		errors.New("down"), errors.New("down"), errors.New("down"),
	}}
	fs := NewFailoverSource(origin, FailoverConfig{
		BreakerThreshold: 2,
		Backoff:          monitor.Backoff{Base: 10 * time.Second, Max: 40 * time.Second, Jitter: -1},
		Clock:            clock,
	})
	ctx := context.Background()
	mustStale := func(label string) {
		t.Helper()
		got, err := fs.Deployment(ctx)
		if err != nil || got != dep {
			t.Fatalf("%s: = %v, %v; want last-good", label, got, err)
		}
	}

	if _, err := fs.Deployment(ctx); err != nil {
		t.Fatal(err)
	}
	mustStale("failure 1") // probes
	mustStale("failure 2") // probes, breaker arms: cooldown 10s
	if got := origin.probeCount(); got != 3 {
		t.Fatalf("probes = %d, want 3", got)
	}
	st := fs.SourceStatus()
	if !st.BreakerOpen || !st.NextProbe.Equal(now.Add(10*time.Second)) {
		t.Fatalf("breaker status = %+v, want open until +10s", st)
	}

	// While the breaker is open, reads serve stale without probing.
	now = now.Add(5 * time.Second)
	mustStale("breaker open")
	if got := origin.probeCount(); got != 3 {
		t.Fatalf("breaker open still probed the origin (probes = %d)", got)
	}

	// Past the cooldown the origin is probed again; the failure grows
	// the next cooldown (capped exponential: 20s).
	now = now.Add(6 * time.Second)
	mustStale("probe after cooldown")
	if got := origin.probeCount(); got != 4 {
		t.Fatalf("cooldown expiry did not probe (probes = %d)", got)
	}
	st = fs.SourceStatus()
	if !st.NextProbe.Equal(now.Add(20 * time.Second)) {
		t.Fatalf("second cooldown = %v, want +20s (got status %+v)", st.NextProbe.Sub(now), st)
	}
}

func TestFailoverDiskCacheColdStart(t *testing.T) {
	cache := filepath.Join(t.TempDir(), "last-good.model")
	dep := linregDep(t)
	ctx := context.Background()

	// First life: a healthy read persists the envelope.
	fs1 := NewFailoverSource(&flakySource{steps: []any{dep}}, FailoverConfig{CacheFile: cache})
	if _, err := fs1.Deployment(ctx); err != nil {
		t.Fatal(err)
	}
	if st := fs1.SourceStatus(); st.CacheError != "" {
		t.Fatalf("cache write failed: %s", st.CacheError)
	}

	// Second life: the registry is down from the start; the node boots
	// from the disk cache — stale, and saying so.
	fs2 := NewFailoverSource(&flakySource{}, FailoverConfig{CacheFile: cache})
	got, err := fs2.Deployment(ctx)
	if err != nil {
		t.Fatalf("cold start with cache: %v", err)
	}
	if got.Name != "linear" || len(got.Features) != 1 || got.Features[0] != "n_threads" {
		t.Fatalf("cached deployment = %+v, want the persisted linear model", got)
	}
	if got.Aggregation.WindowSec != rawAgg().WindowSec {
		t.Fatalf("cached aggregation window = %v, want %v", got.Aggregation.WindowSec, rawAgg().WindowSec)
	}
	if st := fs2.SourceStatus(); !st.Stale {
		t.Fatalf("cache-booted source not marked stale: %+v", st)
	}
	if pred := got.Model.Predict([]float64{2}); pred < 3.9 || pred > 4.1 {
		t.Fatalf("cached model predicts %v, want ~4", pred)
	}
}

// TestFailoverCorruptCacheColdStart covers the ugly reboot: the node
// comes back with a truncated or garbage last-good cache file. The
// corrupt cache must never panic or yield a half-loaded model — a dead
// origin surfaces ErrRegistryUnavailable with the cache failure in
// SourceStatus, and the moment the origin heals the fresh deployment
// flows through and repairs the cache on disk.
func TestFailoverCorruptCacheColdStart(t *testing.T) {
	corrupt := func(t *testing.T, path string) {
		t.Helper()
		// A real envelope cut off partway — the crash-mid-write shape
		// the atomic rename is meant to prevent, simulated anyway.
		seed := NewFailoverSource(&flakySource{steps: []any{linregDep(t)}}, FailoverConfig{CacheFile: path})
		if _, err := seed.Deployment(context.Background()); err != nil {
			t.Fatal(err)
		}
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(path, fi.Size()/2); err != nil {
			t.Fatal(err)
		}
	}
	garbage := func(t *testing.T, path string) {
		t.Helper()
		if err := os.WriteFile(path, []byte("not a model envelope\x00\xff"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	for name, write := range map[string]func(*testing.T, string){"truncated": corrupt, "garbage": garbage} {
		t.Run(name, func(t *testing.T) {
			cache := filepath.Join(t.TempDir(), "last-good.model")
			write(t, cache)
			ctx := context.Background()

			dep := linregDep(t)
			fs := NewFailoverSource(&flakySource{steps: []any{
				errors.New("registry down"), dep,
			}}, FailoverConfig{CacheFile: cache, BreakerThreshold: 10})

			// Origin down + unusable cache: fail closed with the sentinel,
			// not a panic or a partial model.
			got, err := fs.Deployment(ctx)
			if !errors.Is(err, ErrRegistryUnavailable) {
				t.Fatalf("cold start on corrupt cache = %v, %v; want ErrRegistryUnavailable", got, err)
			}
			if d, ok := fs.LastGood(); ok {
				t.Fatalf("corrupt cache installed a last-good deployment: %+v", d)
			}
			if st := fs.SourceStatus(); st.CacheError == "" {
				t.Fatalf("cache failure not surfaced: %+v", st)
			}

			// Origin heals: the fresh read falls through cleanly and the
			// good envelope overwrites the corrupt cache.
			got, err = fs.Deployment(ctx)
			if err != nil || got != dep {
				t.Fatalf("recovered read = %v, %v; want the origin deployment", got, err)
			}

			// Third life: a reboot during a full outage now restores the
			// repaired cache.
			fs3 := NewFailoverSource(&flakySource{}, FailoverConfig{CacheFile: cache})
			got, err = fs3.Deployment(ctx)
			if err != nil || got.Name != "linear" {
				t.Fatalf("boot from repaired cache = %+v, %v; want the linear model", got, err)
			}
		})
	}
}

// TestRefreshFailureNeverDropsModel is the regression test for the
// refresh path: once a deployment is live, a ModelSource that starts
// erroring must never drop it or regress its version — under
// concurrent refreshes and live traffic (run with -race).
func TestRefreshFailureNeverDropsModel(t *testing.T) {
	var calls atomic.Int64
	dep := stubDep(1)
	src := ModelSourceFunc(func(context.Context) (*Deployment, error) {
		if calls.Add(1) == 1 {
			return dep, nil
		}
		return nil, errors.New("registry exploded")
	})
	est := &estimates{}
	svc, err := New(context.Background(),
		WithModelSource(src),
		WithEstimateFunc(est.add),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if v := svc.Stats().ModelVersion; v != 1 {
		t.Fatalf("initial version = %d, want 1", v)
	}

	// Hammer Refresh from several goroutines while sessions push
	// datapoints; every Refresh must fail without touching the model.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := svc.Refresh(context.Background()); err == nil {
					t.Error("Refresh succeeded against an erroring source")
					return
				}
			}
		}()
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ss, err := svc.StartSession(fmt.Sprintf("client-%d", g))
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 30; i++ {
				if err := ss.Push(dp(float64(i*10), 1)); err != nil {
					t.Errorf("push during refresh failures: %v", err)
					return
				}
			}
			if err := ss.EndRun(); err != nil {
				t.Error(err)
			}
		}(g)
	}
	wg.Wait()
	svc.Flush()

	st := svc.Stats()
	if st.ModelVersion != 1 {
		t.Fatalf("version after refresh failures = %d, want 1 (never dropped, never regressed)", st.ModelVersion)
	}
	if st.RefreshFailures == 0 {
		t.Fatal("RefreshFailures not counted")
	}
	if len(est.all()) == 0 {
		t.Fatal("no estimates delivered while the source was failing — the model was dropped")
	}
	for _, e := range est.all() {
		if e.ModelVersion != 1 || e.ModelName != "stub" {
			t.Fatalf("estimate from wrong model: %+v", e)
		}
	}
}

// TestServiceStatsSurfacesStaleness wires a FailoverSource into a
// Service and checks the Stats pass-through: stale flag, stale age on
// the service clock, last error.
func TestServiceStatsSurfacesStaleness(t *testing.T) {
	now := time.Unix(1_000_000, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	dep := stubDep(1)
	origin := &flakySource{steps: []any{dep, errors.New("unreachable")}}
	fs := NewFailoverSource(origin, FailoverConfig{BreakerThreshold: 10, Clock: clock})
	svc, err := New(context.Background(),
		WithModelSource(fs),
		WithClock(clock),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	if st := svc.Stats(); st.RegistryStale {
		t.Fatalf("fresh service reports stale: %+v", st)
	}

	// One failing refresh: the source goes stale; 30 virtual seconds
	// later the stale age reads 30s on the service clock.
	if _, err := svc.Refresh(context.Background()); err != nil {
		t.Fatalf("stale refresh should no-op, got %v", err)
	}
	advance(30 * time.Second)
	st := svc.Stats()
	if !st.RegistryStale || st.RegistryLastError == "" {
		t.Fatalf("stats = %+v, want stale with an error", st)
	}
	if st.RegistryStaleAge != 30*time.Second {
		t.Fatalf("stale age = %v, want 30s", st.RegistryStaleAge)
	}
}
