package serve

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/testutil"
)

// TestHashPlacerPinned pins the default placer's routing bit-for-bit:
// the FNV-1a constants and reduction must never drift, or every
// committed scenario fingerprint and shard-targeted test id breaks.
func TestHashPlacerPinned(t *testing.T) {
	legacy := func(id string, shards int) int {
		const (
			offset32 = 2166136261
			prime32  = 16777619
		)
		h := uint32(offset32)
		for i := 0; i < len(id); i++ {
			h = (h ^ uint32(id[i])) * prime32
		}
		return int(h % uint32(shards))
	}
	p := HashPlacer{}
	for shards := 1; shards <= 16; shards *= 2 {
		for i := 0; i < 500; i++ {
			id := fmt.Sprintf("s-%05d", i)
			if got, want := p.Place(id, shards), legacy(id, shards); got != want {
				t.Fatalf("Place(%q, %d) = %d, legacy FNV path gives %d", id, shards, got, want)
			}
		}
	}
	if p.Rebalance([]ShardLoad{{Shard: 0, Windows: 100}, {Shard: 1}}) != nil {
		t.Fatal("HashPlacer proposed a migration")
	}
}

// TestLoadPlacerGreedyPlan pins the planner's semantics on synthetic
// loads: under the watermark it proposes nothing; over it, it moves
// the hottest movable sessions of the hottest shard to the coldest
// shard deterministically — and an indivisible mega-session that
// would merely relocate the imbalance stays put while smaller
// sessions move around it.
func TestLoadPlacerGreedyPlan(t *testing.T) {
	p := NewLoadPlacer(LoadPlacerConfig{SkewWatermark: 1.4, Alpha: 1, MaxMoves: 8})
	// Shard 0: one 10×-rate session plus five 1× neighbors. Shards
	// 1-3: a few 1× sessions each.
	p.Observe("hot", 0)
	for w := 0; w < 9; w++ {
		p.Observe("hot", 0)
	}
	for i := 0; i < 5; i++ {
		for w := 0; w < 1; w++ {
			p.Observe(fmt.Sprintf("warm-%d", i), 0)
		}
	}
	perShard := []uint64{15, 5, 6, 7}
	for sh := 1; sh < 4; sh++ {
		for i := 0; i < int(perShard[sh]); i++ {
			p.Observe(fmt.Sprintf("cold-%d-%d", sh, i), sh)
		}
	}
	loads := make([]ShardLoad, 4)
	for i := range loads {
		loads[i] = ShardLoad{Shard: i, Windows: perShard[i]}
	}
	moves := p.Rebalance(loads)
	if len(moves) == 0 {
		t.Fatal("skew 15/8.25 over watermark 1.4 proposed no moves")
	}
	for _, mv := range moves {
		if mv.SessionID == "hot" {
			t.Fatalf("planner moved the indivisible hot session (moves %v) — that relocates the skew instead of fixing it", moves)
		}
		if mv.From != 0 {
			t.Fatalf("move %v drains shard %d, the hot shard is 0", mv, mv.From)
		}
		p.Assign(mv.SessionID, mv.To)
	}
	// Replay must be deterministic: same observations, same loads →
	// byte-identical plan.
	q := NewLoadPlacer(LoadPlacerConfig{SkewWatermark: 1.4, Alpha: 1, MaxMoves: 8})
	for w := 0; w < 10; w++ {
		q.Observe("hot", 0)
	}
	for i := 0; i < 5; i++ {
		q.Observe(fmt.Sprintf("warm-%d", i), 0)
	}
	for sh := 1; sh < 4; sh++ {
		for i := 0; i < int(perShard[sh]); i++ {
			q.Observe(fmt.Sprintf("cold-%d-%d", sh, i), sh)
		}
	}
	again := q.Rebalance(loads)
	if len(again) != len(moves) {
		t.Fatalf("replayed plan has %d moves, first had %d", len(again), len(moves))
	}
	for i := range moves {
		if moves[i] != again[i] {
			t.Fatalf("replay diverged at move %d: %v vs %v", i, moves[i], again[i])
		}
	}
	// Balanced fleet below the watermark: quiet.
	balanced := NewLoadPlacer(LoadPlacerConfig{SkewWatermark: 1.5})
	for i := range loads {
		loads[i].Windows = 10
	}
	if mv := balanced.Rebalance(loads); mv != nil {
		t.Fatalf("balanced fleet proposed moves: %v", mv)
	}
}

// TestRebalanceMovesSessions drives the full stack deterministically:
// a load-tracked service whose sessions all hash onto one shard is
// rebalanced, sessions physically move (override table + session map
// + home pointer flip together), queued windows move with them, and
// the accounting stays exact — every accepted window predicted
// exactly once, before and after the migrations.
func TestRebalanceMovesSessions(t *testing.T) {
	const shards = 4
	var delivered atomic.Uint64
	svc, err := New(context.Background(),
		WithDeployment(&Deployment{Model: &stubModel{base: 1}, Name: "v1", Aggregation: rawAgg()}),
		WithShards(shards),
		WithManualDispatch(),
		WithPlacement(NewLoadPlacer(LoadPlacerConfig{SkewWatermark: 1.3, Alpha: 1, MaxMoves: 8})),
		WithEstimateFunc(func(Estimate) { delivered.Add(1) }),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// Every session homes on shard 0 — worst-case placement skew.
	ids := testutil.IDsOnShard(svc.placer.Place, shards, 0, 8)
	sessions := make([]*Session, len(ids))
	for i, id := range ids {
		if sessions[i], err = svc.StartSession(id); err != nil {
			t.Fatal(err)
		}
	}
	// Each push strides one full 10s window, so every push after a
	// session's first completes (and enqueues) the preceding window.
	next := make([]int, len(sessions))
	pushWindows := func(per int) (accepted int) {
		for i, ss := range sessions {
			for w := 0; w < per; w++ {
				if err := ss.Push(dp(float64(next[i]*10+1), float64(i))); err != nil {
					t.Fatal(err)
				}
				if next[i] > 0 {
					accepted++
				}
				next[i]++
			}
		}
		return accepted
	}
	// Interval 1: all load on shard 0, observed by the placer.
	want := uint64(pushWindows(4))
	svc.Flush()
	if got := delivered.Load(); got != want {
		t.Fatalf("%d estimates for %d accepted windows pre-rebalance", got, want)
	}
	// Leave one window QUEUED on shard 0 so migration has something to
	// carry across.
	want += uint64(pushWindows(1))
	moved := svc.Rebalance()
	if moved == 0 {
		t.Fatal("rebalance moved nothing off a maximally skewed shard")
	}
	if got := svc.Stats().Migrations; got != uint64(moved) {
		t.Fatalf("Stats.Migrations %d, Rebalance reported %d", got, moved)
	}
	// The queued windows moved with their sessions: one Flush drains
	// everything, nothing stranded, nothing doubled.
	svc.Flush()
	if got := delivered.Load(); got != want {
		t.Fatalf("%d estimates for %d accepted windows across the migration", got, want)
	}
	if depth := svc.Stats().QueueDepth; depth != 0 {
		t.Fatalf("queue depth %d after post-migration flush", depth)
	}
	// Placement spread out: the shard-0 monopoly is broken and every
	// session is still reachable on its new home.
	loads := svc.Stats().ShardLoads
	if len(loads) != shards {
		t.Fatalf("ShardLoads has %d entries, want %d", len(loads), shards)
	}
	if loads[0].Sessions == len(ids) {
		t.Fatalf("all %d sessions still on shard 0 after %d migrations", len(ids), moved)
	}
	onShard := 0
	for _, ld := range loads {
		onShard += ld.Sessions
	}
	if onShard != len(ids) {
		t.Fatalf("session maps hold %d sessions total, want %d", onShard, len(ids))
	}
	for _, id := range ids {
		if _, ok := svc.Session(id); !ok {
			t.Fatalf("session %q unreachable after migration (routing table and session map disagree)", id)
		}
	}
	// Post-migration pushes land on the new homes and still predict.
	want += uint64(pushWindows(1))
	svc.Flush()
	if got := delivered.Load(); got != want {
		t.Fatalf("%d estimates for %d accepted windows after migration", got, want)
	}
}

// TestMigrationVsThiefAndSweep is the in-flight interaction gate (run
// under -race): a session is migrated WHILE a coalescing thief from
// another shard carries its windows. The migration must block until
// the thief delivers (source dispatchMu protocol), the idle sweep must
// not evict the session mid-carry (pendingWindows), the window queued
// during the carry must move with the session, and every accepted
// window must be predicted exactly once.
func TestMigrationVsThiefAndSweep(t *testing.T) {
	const ttl = 50 * time.Millisecond
	var clk atomic.Int64
	clk.Store(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC).UnixNano())
	now := func() time.Time { return time.Unix(0, clk.Load()) }

	type key struct {
		id   string
		tgen float64
	}
	seen := make(map[key]int)
	var seenMu chan struct{} = make(chan struct{}, 1)
	seenMu <- struct{}{}
	record := func(e Estimate) {
		<-seenMu
		seen[key{e.SessionID, e.Tgen}]++
		seenMu <- struct{}{}
	}

	entered := make(chan struct{})
	unblock := make(chan struct{})
	var armed atomic.Bool
	armed.Store(true)
	failpoint := func(shard, size int) {
		if armed.CompareAndSwap(true, false) && size == 3 {
			close(entered)
			<-unblock
		}
	}

	placer := NewLoadPlacer(LoadPlacerConfig{SkewWatermark: 1.5})
	svc, err := New(context.Background(),
		WithDeployment(&Deployment{Model: &stubModel{base: 1}, Name: "v1", Aggregation: rawAgg()}),
		WithShards(3),
		WithManualDispatch(),
		WithClock(now),
		WithSessionTTL(ttl),
		WithPlacement(placer),
		WithCoalescePolicy(CoalescePolicy{MinBatch: 8}),
		WithBatchFailpoint(failpoint),
		WithEstimateFunc(record),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// victim session on shard 1 with two completed windows queued;
	// trigger session on shard 0 with one (its flush will steal shard
	// 1's queue); idle session on shard 2 proving the sweep really ran.
	victimID := testutil.IDsOnShard(svc.placer.Place, 3, 1, 1)[0]
	victim, err := svc.StartSession(victimID)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w <= 2; w++ {
		if err := victim.Push(dp(float64(w*10+1), 1)); err != nil {
			t.Fatal(err)
		}
	}
	triggerID := testutil.IDsOnShard(svc.placer.Place, 3, 0, 1)[0]
	trigger, err := svc.StartSession(triggerID)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w <= 1; w++ {
		if err := trigger.Push(dp(float64(w*10+1), 1)); err != nil {
			t.Fatal(err)
		}
	}
	idleID := testutil.IDsOnShard(svc.placer.Place, 3, 2, 1)[0]
	if _, err := svc.StartSession(idleID); err != nil {
		t.Fatal(err)
	}

	// The thief: flushing shard 0 takes its own single window, steals
	// shard 1's two, and blocks in the failpoint holding both dispatch
	// mutexes with the three windows in flight.
	thiefDone := make(chan struct{})
	go func() {
		defer close(thiefDone)
		svc.flushShard(svc.shards[0])
	}()
	<-entered

	// A window completed mid-carry stays queued on the victim's
	// current home (shard 1) — migration must carry it across.
	if err := victim.Push(dp(31, 1)); err != nil {
		t.Fatal(err)
	}

	// The migration: blocks on shard 1's dispatchMu until the thief
	// delivers.
	migrated := make(chan bool, 1)
	go func() {
		migrated <- svc.migrate(Move{SessionID: victimID, From: 1, To: 2})
	}()

	// The sweep: everything is past the TTL on the virtual clock, but
	// the victim and trigger sessions have windows in flight or queued
	// and must be spared; only the idle session goes.
	clk.Add(int64(10 * ttl))
	svc.SweepIdleNow()
	if got := svc.Stats().EvictedSessions; got != 1 {
		t.Fatalf("sweep evicted %d sessions mid-carry, want exactly 1 (the idle one)", got)
	}
	if _, ok := svc.Session(victimID); !ok {
		t.Fatal("victim session evicted while a thief carried its windows")
	}
	select {
	case <-migrated:
		t.Fatal("migration completed while the thief still carried the victim's windows")
	default:
	}

	close(unblock)
	<-thiefDone
	if !<-migrated {
		t.Fatal("migration failed after the thief released")
	}

	// Landed on the new home with the mid-carry window intact.
	svc.shards[2].mu.Lock()
	_, onNew := svc.shards[2].sessions[victimID]
	svc.shards[2].mu.Unlock()
	if !onNew {
		t.Fatal("victim session not homed on shard 2 after migration")
	}
	svc.Flush()
	if got := svc.Stats().Migrations; got != 1 {
		t.Fatalf("Stats.Migrations %d, want 1", got)
	}
	<-seenMu
	defer func() { seenMu <- struct{}{} }()
	// Single-datapoint windows emit tgen = the datapoint's Tgen.
	wantKeys := []key{
		{victimID, 1}, {victimID, 11}, {victimID, 21},
		{triggerID, 1},
	}
	if len(seen) != len(wantKeys) {
		t.Fatalf("%d distinct windows predicted, want %d: %v", len(seen), len(wantKeys), seen)
	}
	for _, k := range wantKeys {
		if seen[k] != 1 {
			t.Fatalf("window %v predicted %d times, want exactly once", k, seen[k])
		}
	}
	if depth := svc.Stats().QueueDepth; depth != 0 {
		t.Fatalf("queue depth %d after drain — a window was stranded by the migration", depth)
	}
}
