package serve

import (
	"sort"
	"sync"
)

// This file is the placement layer: the policy that decides which
// shard a session lives on, separated from the mechanism (shard.go)
// that stores and dispatches it. Routing used to be a hardwired FNV
// hash inlined in the dispatcher's shard lookup; it is now a Placer —
// an interface the service consults on every lookup and feeds with
// per-window load observations, so a load-tracked implementation can
// detect a hot shard and migrate sessions off it at runtime.

// ShardLoad is one shard's load snapshot, as handed to
// Placer.Rebalance and exposed through Stats.ShardLoads.
type ShardLoad struct {
	// Shard is the shard index.
	Shard int
	// Sessions is the number of sessions currently homed on the shard.
	Sessions int
	// QueueDepth is the shard's pending-window count at snapshot time.
	QueueDepth int
	// Windows is the cumulative count of windows enqueued on the shard
	// since New — monotonic, so a placer can difference successive
	// snapshots into per-interval window rates.
	Windows uint64
}

// Move is one proposed session migration: take SessionID off shard
// From and home it on shard To.
type Move struct {
	SessionID string
	From, To  int
}

// Placer is the routing policy of the serving tier. Place must be a
// pure function of the placer's current routing state: the service
// re-checks it under the destination shard's lock, and a migration
// commits its routing flip (Assign) while holding both affected shard
// locks, so lookup and session map can never disagree once a lock is
// held. All methods must be safe for concurrent use.
type Placer interface {
	// Place maps a session id to a shard index in [0, shards).
	Place(id string, shards int) int
	// Observe records one accepted (enqueued, not shed) window for the
	// session on the given shard — the placer's load signal. Called on
	// the enqueue path with no lock held; it must be cheap.
	Observe(id string, shard int)
	// Rebalance inspects the per-shard loads and proposes migrations.
	// It is only ever called from Service.Rebalance; returning nil (or
	// an empty slice) means the placement is acceptable as is.
	Rebalance(loads []ShardLoad) []Move
	// Assign commits a migration into the routing table: from now on
	// Place(id) must return shard. Called by the service under both
	// affected shard locks once the session has actually moved — a
	// proposed Move that fails validation is never assigned.
	Assign(id string, shard int)
	// Forget drops all per-session routing state (override entries,
	// load counts) when a session closes or is evicted.
	Forget(id string)
}

// fnvShard hashes a session id onto a shard index (FNV-1a: cheap,
// stable, and uniform enough that 10⁴ ids spread within a few
// percent). This is the exact hash the pre-placement serving tier
// used, kept bit-for-bit so HashPlacer routes identically.
func fnvShard(id string, shards int) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(id); i++ {
		h = (h ^ uint32(id[i])) * prime32
	}
	return int(h % uint32(shards))
}

// HashPlacer is the default placement policy: stateless FNV-1a id
// hashing, bitwise-identical to the routing the serving tier used
// before placement became pluggable. It never proposes migrations.
type HashPlacer struct{}

// Place implements Placer.
func (HashPlacer) Place(id string, shards int) int { return fnvShard(id, shards) }

// Observe implements Placer (no-op: hashing needs no load signal).
func (HashPlacer) Observe(string, int) {}

// Rebalance implements Placer (the hash is never rebalanced).
func (HashPlacer) Rebalance([]ShardLoad) []Move { return nil }

// Assign implements Placer (no-op: no moves are ever proposed).
func (HashPlacer) Assign(string, int) {}

// Forget implements Placer (no-op).
func (HashPlacer) Forget(string) {}

// LoadPlacerConfig tunes the load-tracked placer.
type LoadPlacerConfig struct {
	// SkewWatermark is the max/mean per-shard window-rate ratio past
	// which Rebalance starts proposing migrations. Must exceed 1 (a
	// perfectly balanced fleet sits at 1.0); values at or below 1 fall
	// back to the default 1.5.
	SkewWatermark float64
	// Alpha is the EWMA smoothing factor for the per-shard window
	// rates (0 < Alpha ≤ 1; default 0.5). Higher reacts faster, lower
	// rides out bursts.
	Alpha float64
	// MaxMoves caps the migrations proposed per Rebalance call
	// (default 8) — rebalancing converges over successive calls
	// instead of thrashing the fleet in one step.
	MaxMoves int
	// MinWindows is the minimum fleet-wide window count per
	// observation interval before Rebalance acts (default 1): a
	// near-idle fleet has meaningless rates and is left alone.
	MinWindows uint64
}

// sessionLoad is the placer's per-session load record.
type sessionLoad struct {
	shard int    // where the session's windows were last observed
	count uint64 // cumulative observed windows
	mark  uint64 // count at the last Rebalance (interval baseline)
}

// LoadPlacer is the load-tracked placement policy: sessions route by
// the same FNV hash as HashPlacer until Rebalance decides otherwise,
// at which point migrated sessions are pinned through an explicit
// routing override table. Per-shard window rates are EWMA-smoothed
// across Rebalance calls; when the max/mean rate skew exceeds the
// watermark, Rebalance greedily moves the hottest movable sessions of
// the hottest shard onto the coldest shard — skipping any session so
// hot that moving it would merely relocate the imbalance. Selection
// is deterministic (rate descending, id ascending, ties to the lowest
// shard index), so a manual-dispatch harness replays it byte for
// byte.
type LoadPlacer struct {
	cfg LoadPlacerConfig

	mu        sync.Mutex
	overrides map[string]int          // explicit routing table (migrated sessions)
	sessions  map[string]*sessionLoad // per-session window counts
	rates     []float64               // per-shard EWMA windows/interval
	prev      []uint64                // per-shard cumulative windows at last Rebalance
	primed    bool
}

// NewLoadPlacer builds a load-tracked placer, applying defaults for
// zero config fields (watermark 1.5, alpha 0.5, 8 moves per call).
func NewLoadPlacer(cfg LoadPlacerConfig) *LoadPlacer {
	if cfg.SkewWatermark <= 1 {
		cfg.SkewWatermark = 1.5
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		cfg.Alpha = 0.5
	}
	if cfg.MaxMoves <= 0 {
		cfg.MaxMoves = 8
	}
	if cfg.MinWindows == 0 {
		cfg.MinWindows = 1
	}
	return &LoadPlacer{
		cfg:       cfg,
		overrides: make(map[string]int),
		sessions:  make(map[string]*sessionLoad),
	}
}

// Place implements Placer: the override table wins, the FNV hash is
// the fallback for everything never migrated.
func (p *LoadPlacer) Place(id string, shards int) int {
	p.mu.Lock()
	idx, ok := p.overrides[id]
	p.mu.Unlock()
	if ok && idx >= 0 && idx < shards {
		return idx
	}
	return fnvShard(id, shards)
}

// Observe implements Placer: one accepted window for id on shard.
func (p *LoadPlacer) Observe(id string, shard int) {
	p.mu.Lock()
	sl := p.sessions[id]
	if sl == nil {
		sl = &sessionLoad{}
		p.sessions[id] = sl
	}
	sl.shard = shard
	sl.count++
	p.mu.Unlock()
}

// Assign implements Placer: pin id to shard in the override table.
func (p *LoadPlacer) Assign(id string, shard int) {
	p.mu.Lock()
	p.overrides[id] = shard
	if sl := p.sessions[id]; sl != nil {
		sl.shard = shard
	}
	p.mu.Unlock()
}

// Forget implements Placer.
func (p *LoadPlacer) Forget(id string) {
	p.mu.Lock()
	delete(p.overrides, id)
	delete(p.sessions, id)
	p.mu.Unlock()
}

// Rebalance implements Placer. Each call is one observation interval:
// shard window deltas since the previous call update the EWMA rates,
// per-session deltas rank the migration candidates, and — only when
// the smoothed max/mean skew is at or past the watermark — a greedy
// planner moves the hottest sessions of the currently hottest shard
// to the currently coldest one, re-evaluating hot/cold after every
// move. A candidate is only taken when landing it strictly improves
// the pair (cold + candidate < hot), so an indivisible mega-session
// is left in place rather than bounced between shards.
func (p *LoadPlacer) Rebalance(loads []ShardLoad) []Move {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := len(loads)
	if n == 0 {
		return nil
	}
	if len(p.rates) != n {
		p.rates = make([]float64, n)
		p.prev = make([]uint64, n)
		p.primed = false
	}
	deltas := make([]float64, n)
	var total float64
	for i, ld := range loads {
		d := float64(ld.Windows - p.prev[i])
		p.prev[i] = ld.Windows
		deltas[i] = d
		total += d
	}
	if !p.primed {
		copy(p.rates, deltas)
		p.primed = true
	} else {
		for i := range p.rates {
			p.rates[i] = p.cfg.Alpha*deltas[i] + (1-p.cfg.Alpha)*p.rates[i]
		}
	}

	// Advance every session's interval baseline whether or not this
	// call migrates anything, and bucket the interval-active sessions
	// by their current shard — the candidate pools.
	type cand struct {
		id   string
		rate float64
	}
	byShard := make([][]cand, n)
	for id, sl := range p.sessions {
		d := sl.count - sl.mark
		sl.mark = sl.count
		if d == 0 || sl.shard < 0 || sl.shard >= n {
			continue
		}
		byShard[sl.shard] = append(byShard[sl.shard], cand{id: id, rate: float64(d)})
	}
	if n < 2 || total < float64(p.cfg.MinWindows) {
		return nil
	}
	mean := 0.0
	for _, r := range p.rates {
		mean += r
	}
	mean /= float64(n)
	if mean <= 0 {
		return nil
	}
	maxRate := p.rates[0]
	for _, r := range p.rates[1:] {
		if r > maxRate {
			maxRate = r
		}
	}
	if maxRate/mean < p.cfg.SkewWatermark {
		return nil
	}
	for i := range byShard {
		sort.Slice(byShard[i], func(a, b int) bool {
			ca, cb := byShard[i][a], byShard[i][b]
			if ca.rate != cb.rate {
				return ca.rate > cb.rate
			}
			return ca.id < cb.id
		})
	}

	// Greedy planning over a working copy of the rates: each step
	// re-picks the hottest and coldest shards (ties to the lowest
	// index) and moves the largest candidate whose move strictly
	// improves the pair.
	w := append([]float64(nil), p.rates...)
	var moves []Move
	for len(moves) < p.cfg.MaxMoves {
		hot, cold := 0, 0
		for i := 1; i < n; i++ {
			if w[i] > w[hot] {
				hot = i
			}
			if w[i] < w[cold] {
				cold = i
			}
		}
		if w[hot]/mean < p.cfg.SkewWatermark {
			break
		}
		picked := -1
		for ci, c := range byShard[hot] {
			if w[cold]+c.rate < w[hot] {
				picked = ci
				break
			}
		}
		if picked < 0 {
			break
		}
		c := byShard[hot][picked]
		byShard[hot] = append(byShard[hot][:picked], byShard[hot][picked+1:]...)
		w[hot] -= c.rate
		w[cold] += c.rate
		moves = append(moves, Move{SessionID: c.id, From: hot, To: cold})
	}
	return moves
}

// WithPlacement sets the service's placement policy — the layer that
// maps session ids onto shards and, for load-tracked implementations,
// proposes hot-shard migrations applied by Service.Rebalance. The
// default is HashPlacer, which routes bitwise-identically to the
// pre-placement FNV path and never migrates.
func WithPlacement(p Placer) Option {
	return func(c *config) { c.placer = p }
}

// Rebalance asks the placer to inspect the current per-shard loads
// and applies every migration it proposes, returning how many
// sessions actually moved (proposals for sessions that closed or
// already moved are skipped). With the default HashPlacer this is
// always 0. Rebalance is the actuator behind the autonomic reshard
// loop: a supervisor watching shard skew calls it to physically move
// load instead of merely shedding it. It must not be called from a
// service callback (estimate, alert, shed, failpoint hooks): it
// blocks on dispatch mutexes those callbacks run under.
func (s *Service) Rebalance() int {
	if s.closed.Load() {
		return 0
	}
	moves := s.placer.Rebalance(s.shardLoads())
	moved := 0
	for _, mv := range moves {
		if s.migrate(mv) {
			moved++
		}
	}
	return moved
}

// shardLoads snapshots every shard's load, one shard lock at a time.
func (s *Service) shardLoads() []ShardLoad {
	out := make([]ShardLoad, len(s.shards))
	for i, sh := range s.shards {
		sh.mu.Lock()
		out[i] = ShardLoad{
			Shard:      i,
			Sessions:   len(sh.sessions),
			QueueDepth: len(sh.pending),
			Windows:    sh.windows.Load(),
		}
		sh.mu.Unlock()
	}
	return out
}

// migrate moves one session (and every window it has queued) from
// shard From to shard To, reporting whether the move happened. The
// exactness invariants match coalescing's:
//
//   - The source's dispatch mutex is held (blocking acquire) for the
//     whole move. Every taker of the source's queue — its own
//     dispatcher or a coalescing thief — holds that mutex from take to
//     estimate delivery, so once migrate has it, no window taken from
//     the source shard is still awaiting delivery.
//   - Both shard locks are held (index order) while the session map
//     entry, its queued rows, the session's home pointer, and the
//     placer's routing table flip together: a concurrent Push either
//     enqueued on the old shard before the locks (its row moves with
//     the session) or re-reads the home pointer under the new shard's
//     lock after. No queued or in-flight window is ever stranded.
//   - Queued rows keep their relative order (appended to the tail of
//     the destination queue), and the global queue-depth counter and
//     shed accounting are untouched — predicted+shed still exactly
//     partition accepted.
//
// The only blocking dispatch-mutex acquisitions anywhere are a
// dispatcher taking its own and migrate taking the source's; neither
// path holds any other dispatch mutex while blocking, so the try-lock
// coalescing protocol stays deadlock-free.
func (s *Service) migrate(mv Move) bool {
	if mv.From == mv.To || mv.From < 0 || mv.To < 0 ||
		mv.From >= len(s.shards) || mv.To >= len(s.shards) {
		return false
	}
	from, to := s.shards[mv.From], s.shards[mv.To]
	from.dispatchMu.Lock()
	defer from.dispatchMu.Unlock()
	lo, hi := from, to
	if mv.To < mv.From {
		lo, hi = to, from
	}
	lo.mu.Lock()
	defer lo.mu.Unlock()
	hi.mu.Lock()
	defer hi.mu.Unlock()
	if from.closed || to.closed {
		return false
	}
	ss, ok := from.sessions[mv.SessionID]
	if !ok {
		return false
	}
	ss.mu.Lock()
	dead := ss.closed
	ss.mu.Unlock()
	if dead {
		return false
	}
	delete(from.sessions, mv.SessionID)
	to.sessions[mv.SessionID] = ss
	if len(from.pending) > 0 {
		keep := from.pending[:0]
		for _, pr := range from.pending {
			if pr.sess == ss {
				to.pending = append(to.pending, pr)
			} else {
				keep = append(keep, pr)
			}
		}
		from.pending = keep
	}
	ss.home.Store(to)
	s.placer.Assign(mv.SessionID, mv.To)
	s.migrations.Add(1)
	// Wake the destination dispatcher for any rows that moved with the
	// session (safe under the locks: the send never blocks).
	select {
	case to.kick <- struct{}{}:
	default:
	}
	return true
}
