package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/trace"
)

// TestSessionTTLEviction covers the idle-TTL sweep end to end: idle
// sessions are evicted with their Latest() snapshot delivered exactly
// once, active sessions survive, queued windows of evicted sessions
// are still predicted, and the counters add up.
func TestSessionTTLEviction(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var mu sync.Mutex
	evicted := map[string]EvictedSession{}
	svc, err := New(ctx,
		WithDeployment(&Deployment{Model: &stubModel{base: 1}, Name: "v1", Aggregation: rawAgg()}),
		WithSessionTTL(50*time.Millisecond),
		WithSessionEvictFunc(func(ev EvictedSession) {
			mu.Lock()
			if _, dup := evicted[ev.ID]; dup {
				t.Errorf("session %s evicted twice", ev.ID)
			}
			evicted[ev.ID] = ev
			mu.Unlock()
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// An idle session with one delivered estimate.
	idle, err := svc.StartSession("idle")
	if err != nil {
		t.Fatal(err)
	}
	if err := idle.Push(dp(0, 3)); err != nil {
		t.Fatal(err)
	}
	if err := idle.Push(dp(10, 3)); err != nil { // completes the 10s window
		t.Fatal(err)
	}
	waitFor(t, func() bool { _, ok := idle.Latest(); return ok })

	// A busy session that keeps touching its activity stamp.
	busy, err := svc.StartSession("busy")
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tg := 0.0
		for {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
				tg++
				_ = busy.Push(dp(tg, 1))
			}
		}
	}()

	// Wait for the idle session to be evicted.
	waitFor(t, func() bool { return svc.Stats().EvictedSessions >= 1 })
	close(stop)
	wg.Wait()

	mu.Lock()
	ev, ok := evicted["idle"]
	mu.Unlock()
	if !ok {
		t.Fatal("idle session not delivered to the evict hook")
	}
	if !ev.HasEstimate || ev.Estimates != 1 {
		t.Fatalf("evicted snapshot %+v", ev)
	}
	if ev.Last.RTTF != 1+3 { // stub base 1 + num_threads 3
		t.Fatalf("evicted snapshot RTTF %v", ev.Last.RTTF)
	}
	if _, stillThere := svc.Session("idle"); stillThere {
		t.Fatal("evicted session still registered")
	}
	if _, gone := svc.Session("busy"); !gone {
		t.Fatal("busy session was evicted despite activity")
	}
	if err := idle.Push(dp(100, 1)); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("push into evicted session: %v", err)
	}
	// A client with the same id can come back as a fresh session.
	if _, err := svc.StartSession("idle"); err != nil {
		t.Fatalf("re-register after eviction: %v", err)
	}
	st := svc.Stats()
	if st.Predictions == 0 || st.LastBatchSize == 0 || st.LastBatchLatency <= 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
}

// TestSessionEvictionRace is the race gate for eviction vs in-flight
// prediction: many sessions push windows while an aggressive TTL
// sweeps them out. Every completed window must be predicted exactly
// once (no drops, no duplicates), the session count must stay bounded,
// and evict-hook deliveries must match the eviction counter. Run with
// -race.
func TestSessionEvictionRace(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	const clients = 60
	const windows = 5
	var estimates atomic.Uint64
	var hookCalls atomic.Uint64
	perSession := make([]atomic.Uint64, clients)
	svc, err := New(ctx,
		WithDeployment(&Deployment{Model: &stubModel{base: 1}, Name: "v1", Aggregation: rawAgg()}),
		WithSessionTTL(2*time.Millisecond), // aggressive: sweeps race live pushes
		WithSessionEvictFunc(func(EvictedSession) { hookCalls.Add(1) }),
		WithEstimateFunc(func(e Estimate) {
			estimates.Add(1)
			var idx int
			fmt.Sscanf(e.SessionID, "c-%d", &idx)
			perSession[idx].Add(1)
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	var wg sync.WaitGroup
	var pushed atomic.Uint64
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			id := fmt.Sprintf("c-%d", c)
			// Each client completes `windows` aggregation windows,
			// re-registering whenever the sweep evicted it. A window
			// only counts as pushed when its completing datapoint was
			// accepted — exact accounting needs exact production
			// numbers.
			done := 0
			tg := 0.0
			for done < windows {
				ss, err := svc.StartSession(id)
				if errors.Is(err, ErrDuplicateSession) {
					var ok bool
					if ss, ok = svc.Session(id); !ok {
						continue
					}
				} else if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				// Feed one full window: a point inside, then the
				// boundary point that completes it.
				if ss.Push(dp(tg, float64(c))) != nil {
					continue // evicted mid-window: start over
				}
				tg += 10
				if ss.Push(dp(tg, float64(c))) != nil {
					continue
				}
				pushed.Add(1)
				done++
				if done%2 == 0 {
					time.Sleep(3 * time.Millisecond) // let the sweep catch some
				}
			}
		}(c)
	}
	wg.Wait()

	// Every accepted window must be predicted exactly once.
	waitFor(t, func() bool { return estimates.Load() >= pushed.Load() })
	time.Sleep(20 * time.Millisecond) // would catch duplicates arriving late
	if got, want := estimates.Load(), pushed.Load(); got != want {
		t.Fatalf("%d estimates for %d accepted windows", got, want)
	}
	st := svc.Stats()
	if st.EvictedSessions != hookCalls.Load() {
		t.Fatalf("evicted counter %d vs %d hook deliveries", st.EvictedSessions, hookCalls.Load())
	}
	if st.EvictedSessions == 0 {
		t.Fatal("aggressive TTL evicted nothing — the race went unexercised")
	}
	if st.Sessions > clients {
		t.Fatalf("%d sessions for %d clients", st.Sessions, clients)
	}
	if st.QueueDepth != 0 {
		t.Fatalf("queue depth %d after drain", st.QueueDepth)
	}
}

// TestAutoRefresh covers WithRefreshInterval: the service hot-swaps
// models from its source on the ticker without any Refresh call, a
// failing source keeps the current model serving, and the refresh
// counter tracks successful swaps.
func TestAutoRefresh(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var pulls atomic.Uint64
	var failing atomic.Bool
	src := ModelSourceFunc(func(ctx context.Context) (*Deployment, error) {
		n := pulls.Add(1)
		if failing.Load() {
			return nil, errors.New("registry down")
		}
		return &Deployment{Model: &stubModel{base: float64(n)}, Name: fmt.Sprintf("v%d", n), Aggregation: rawAgg()}, nil
	})
	svc, err := New(ctx,
		WithModelSource(src),
		WithRefreshInterval(5*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	if svc.ModelVersion() != 1 {
		t.Fatalf("initial version %d", svc.ModelVersion())
	}
	waitFor(t, func() bool { return svc.ModelVersion() >= 3 })
	if svc.Stats().Refreshes < 2 {
		t.Fatalf("refresh counter %d", svc.Stats().Refreshes)
	}
	// A broken source must not disturb the served model.
	failing.Store(true)
	ver := svc.ModelVersion()
	time.Sleep(25 * time.Millisecond)
	if svc.ModelVersion() != ver {
		t.Fatalf("version moved to %d while the source was failing", svc.ModelVersion())
	}
	failing.Store(false)
	waitFor(t, func() bool { return svc.ModelVersion() > ver })
}

// TestRefreshIntervalRequiresSource pins the option contract.
func TestRefreshIntervalRequiresSource(t *testing.T) {
	_, err := New(context.Background(),
		WithDeployment(&Deployment{Model: &stubModel{}, Name: "v1", Aggregation: rawAgg()}),
		WithRefreshInterval(time.Second),
	)
	if err == nil {
		t.Fatal("WithRefreshInterval without a source accepted")
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

var _ = trace.Datapoint{}
