package f2pm

import (
	"time"

	"repro/internal/autonomic"
)

// Autonomic layer (ROADMAP item 5): a closed MAPE loop that watches
// serving-side signals, decides through pluggable policies, and acts
// through typed actuators — retrain, slide, publish, redeploy,
// reshard — with every decision logged in sequence. The supervisor
// owns no goroutines and no clock; the caller ticks it, which is what
// makes its decision stream deterministic and replayable. See the
// package documentation's "Autonomic operation" section and
// docs/autonomic.md.
type (
	// Supervisor is the closed loop: signals in, decisions out.
	Supervisor = autonomic.Supervisor
	// SupervisorConfig shapes a Supervisor: policies, actuators,
	// per-action cooldowns, the deferred-publish fallback, and the
	// decision hook.
	SupervisorConfig = autonomic.Config
	// SupervisorActuators are the execute arms of the loop.
	SupervisorActuators = autonomic.Actuators
	// SupervisorPolicy is one analyze/plan unit: it reads a tick's
	// signals and proposes actions.
	SupervisorPolicy = autonomic.Policy
	// SupervisorDecision is one entry of the structured decision log.
	SupervisorDecision = autonomic.Decision
	// SupervisorSignal is one observation on the supervisor's bus.
	SupervisorSignal = autonomic.Signal
	// SupervisorSignalKind tags a SupervisorSignal.
	SupervisorSignalKind = autonomic.SignalKind
	// SupervisorAction is a typed action with its parameters.
	SupervisorAction = autonomic.Action
	// SupervisorActionKind names an action family.
	SupervisorActionKind = autonomic.ActionKind

	// DriftPolicy fires a retrain (optionally slide-first,
	// publish-after) when an incremental update reports feature drift
	// past a threshold.
	DriftPolicy = autonomic.DriftPolicy
	// PredictionErrorPolicy fires a retrain when the EWMA of graded
	// prediction errors crosses its trigger, with hysteresis so the
	// loop does not thrash.
	PredictionErrorPolicy = autonomic.PredictionErrorPolicy
	// OverloadPolicy tightens and relaxes the serving shed policy on
	// sustained queue-depth watermarks.
	OverloadPolicy = autonomic.OverloadPolicy
	// SkewPolicy proposes a rebalance when the per-shard window-rate
	// skew stays above its trigger for Sustain consecutive
	// observations; the placement layer (WithPlacement) decides which
	// sessions actually move.
	SkewPolicy = autonomic.SkewPolicy
)

// Signal kinds a supervisor understands (see autonomic.SignalKind).
const (
	SignalDrift           = autonomic.SignalDrift
	SignalPredictionError = autonomic.SignalPredictionError
	SignalQueueDepth      = autonomic.SignalQueueDepth
	SignalShed            = autonomic.SignalShed
	SignalStaleness       = autonomic.SignalStaleness
	SignalNewRuns         = autonomic.SignalNewRuns
	SignalShardSkew       = autonomic.SignalShardSkew
)

// Action kinds a supervisor can take (see autonomic.ActionKind).
const (
	ActionRetrain   = autonomic.ActionRetrain
	ActionSlide     = autonomic.ActionSlide
	ActionPublish   = autonomic.ActionPublish
	ActionRedeploy  = autonomic.ActionRedeploy
	ActionReshard   = autonomic.ActionReshard
	ActionRebalance = autonomic.ActionRebalance
)

// NewSupervisor validates the configuration and returns a supervisor.
// Feed it with Supervisor.Signal and drive it with Supervisor.Tick on
// whatever clock the caller owns — a wall ticker in a daemon, the
// virtual clock in a simulation.
func NewSupervisor(cfg SupervisorConfig) (*Supervisor, error) { return autonomic.New(cfg) }

// SuperviseService wires the standard serving-side feed for a
// supervisor: a goroutine samples the service's stats every interval,
// publishes queue-depth, shed-delta, registry-staleness, and per-shard
// window-skew signals, and ticks the supervisor. It returns a stop
// function; the loop also stops when the service's context is
// cancelled via the done channel.
//
// This is the daemon-shaped convenience over the deterministic core:
// tests and simulations should instead call Signal/Tick directly on a
// virtual clock.
func SuperviseService(sup *Supervisor, svc *PredictionService, every time.Duration, done <-chan struct{}) (stop func()) {
	quit := make(chan struct{})
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		var lastShed uint64
		var lastWin []uint64
		for {
			select {
			case <-quit:
				return
			case <-done:
				return
			case now := <-t.C:
				st := svc.Stats()
				sup.Signal(SupervisorSignal{Kind: SignalQueueDepth, At: now, Value: float64(st.QueueDepth)})
				if d := st.ShedWindows - lastShed; d > 0 {
					sup.Signal(SupervisorSignal{Kind: SignalShed, At: now, Value: float64(d)})
				}
				lastShed = st.ShedWindows
				if st.RegistryStale {
					sup.Signal(SupervisorSignal{Kind: SignalStaleness, At: now,
						Value: st.RegistryStaleAge.Seconds(), Detail: st.RegistryLastError})
				} else {
					sup.Signal(SupervisorSignal{Kind: SignalStaleness, At: now, Value: 0})
				}
				// Per-shard window skew (max/mean of the windows enqueued
				// since the previous sample) — the SkewPolicy's input.
				if skew, ok := shardSkew(st.ShardLoads, lastWin); ok {
					sup.Signal(SupervisorSignal{Kind: SignalShardSkew, At: now, Value: skew})
				}
				lastWin = lastWin[:0]
				for _, ld := range st.ShardLoads {
					lastWin = append(lastWin, ld.Windows)
				}
				sup.Tick(now)
			}
		}
	}()
	var once bool
	return func() {
		if !once {
			once = true
			close(quit)
		}
	}
}

// shardSkew differences the cumulative per-shard window counters
// against the previous sample and returns max/mean of the deltas — 1.0
// is perfectly balanced. ok is false with fewer than two shards or no
// windows in the interval (a skew of an idle fleet is meaningless).
func shardSkew(loads []ShardLoad, prev []uint64) (float64, bool) {
	if len(loads) < 2 {
		return 0, false
	}
	var total, max float64
	for i, ld := range loads {
		d := float64(ld.Windows)
		if i < len(prev) {
			d -= float64(prev[i])
		}
		if d > max {
			max = d
		}
		total += d
	}
	if total <= 0 {
		return 0, false
	}
	return max / (total / float64(len(loads))), true
}
