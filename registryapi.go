package f2pm

import (
	"bytes"
	"context"
	"net/http"
	"time"

	"repro/internal/registry"
	"repro/internal/serve"
)

// Remote registry layer (ROADMAP item 2): one trainer publishes
// deployment envelopes to a registry service (cmd/fmr); N serving
// nodes pull them with conditional GETs and keep serving their
// last-good model when the registry is down. See the package
// documentation's "Remote registry" section.
type (
	// ModelRegistry is the registry control plane: an http.Handler
	// serving deployment envelopes with strong ETags, node heartbeats,
	// and the fleet health view.
	ModelRegistry = registry.Server
	// RegistryOption configures a ModelRegistry.
	RegistryOption = registry.Option
	// RegistryClient publishes envelopes, sends heartbeats, and reads
	// fleet health over HTTP.
	RegistryClient = registry.Client
	// RegistryHeartbeat is one serving node's liveness/convergence
	// report.
	RegistryHeartbeat = registry.Heartbeat
	// RegistryHealth is the fleet view served at /v1/health.
	RegistryHealth = registry.Health
	// RegistryNodeHealth is one node's row in RegistryHealth.
	RegistryNodeHealth = registry.NodeHealth
	// RegistryPublishResult is the outcome of publishing an envelope.
	RegistryPublishResult = registry.PublishResult

	// HTTPModelSource polls a registry with conditional GETs and
	// stale-while-revalidate failover — plug it into a
	// PredictionService via WithModelSource + WithRefreshInterval.
	HTTPModelSource = serve.HTTPModelSource
	// HTTPSourceConfig shapes an HTTPModelSource (HTTP client, failover
	// cache file, breaker/backoff knobs).
	HTTPSourceConfig = serve.HTTPSourceConfig
	// SourceStatus is a model source's view of its upstream: staleness,
	// last error, circuit-breaker state.
	SourceStatus = serve.SourceStatus
)

// ErrRegistryUnavailable surfaces only on a true cold start: the
// registry is down and the node has no last-good model (in memory or
// on disk) to serve.
var ErrRegistryUnavailable = serve.ErrRegistryUnavailable

// NewModelRegistry builds an empty registry control plane; mount it on
// any http server (it implements http.Handler).
func NewModelRegistry(opts ...RegistryOption) *ModelRegistry { return registry.New(opts...) }

// WithRegistryLivenessWindow sets how stale a heartbeat may be before
// the node counts as dead in the health view (default 30 s).
func WithRegistryLivenessWindow(d time.Duration) RegistryOption {
	return registry.WithLivenessWindow(d)
}

// WithRegistryPublishHook registers a callback for every accepted
// publish that changed the envelope (persistence, logging).
func WithRegistryPublishHook(fn func(registry.Published)) RegistryOption {
	return registry.WithPublishHook(fn)
}

// NewRegistryClient builds a client for the registry at base (e.g.
// "http://host:7071"); a nil hc uses http.DefaultClient.
func NewRegistryClient(base string, hc *http.Client) *RegistryClient {
	return registry.NewClient(base, hc)
}

// NewHTTPModelSource builds a registry-backed model source polling
// base with conditional GETs, retrying through the capped-exponential
// backoff, caching the last-good envelope in cfg.CacheFile, and
// serving stale during registry outages.
func NewHTTPModelSource(base string, cfg HTTPSourceConfig) *HTTPModelSource {
	return serve.NewHTTPModelSource(base, cfg)
}

// PublishDeployment saves dep as a modelio envelope and publishes it
// to the registry at base — the trainer-side one-liner behind
// cmd/f2pm -publish.
func PublishDeployment(ctx context.Context, base string, dep *Deployment) (RegistryPublishResult, error) {
	var buf bytes.Buffer
	if err := SaveDeployment(&buf, dep); err != nil {
		return RegistryPublishResult{}, err
	}
	return registry.NewClient(base, nil).Publish(ctx, buf.Bytes())
}
