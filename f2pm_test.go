package f2pm_test

import (
	"bytes"
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"
	"time"

	f2pm "repro"
)

// simulateHistory builds a small deterministic campaign through the
// public API only.
func simulateHistory(t testing.TB) *f2pm.TestbedResult {
	t.Helper()
	cfg := f2pm.DefaultTestbedConfig(7)
	cfg.Machine.TotalMemKB = 384 * 1024
	cfg.Machine.TotalSwapKB = 192 * 1024
	cfg.Machine.BaseUsedKB = 96 * 1024
	cfg.Machine.BaseSharedKB = 12 * 1024
	cfg.Machine.BaseBuffersKB = 12 * 1024
	cfg.Machine.MinCacheKB = 12 * 1024
	cfg.NumBrowsers = 12
	cfg.Browser.ThinkMeanSec = 2
	cfg.LeakProbRange = [2]float64{0.5, 0.9}
	cfg.LeakSizeKBRange = [2]float64{512, 2048}
	cfg.RebootDelaySec = 20
	tb, err := f2pm.NewTestbed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tb.Run(10_000)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPublicAPIEndToEnd(t *testing.T) {
	res := simulateHistory(t)
	if len(res.History.FailedRuns()) < 3 {
		t.Fatalf("only %d failed runs", len(res.History.FailedRuns()))
	}

	// CSV round trip through the facade.
	var buf bytes.Buffer
	if err := f2pm.WriteHistoryCSV(&buf, &res.History); err != nil {
		t.Fatal(err)
	}
	loaded, err := f2pm.ReadHistoryCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.TotalDatapoints() != res.History.TotalDatapoints() {
		t.Fatal("CSV round trip lost datapoints")
	}

	// Pipeline with a compact roster.
	cfg := f2pm.DefaultConfig()
	cfg.Aggregation.WindowSec = 15
	cfg.SelectionLambda = 1e5
	cfg.Models = f2pm.DefaultModels(nil)[:3] // linear, m5p, reptree
	pipe, err := f2pm.NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	report, err := pipe.Run(loaded)
	if err != nil {
		t.Fatal(err)
	}
	best := report.Best()
	if best == nil {
		t.Fatal("no best model")
	}
	if best.Report.RAE >= 1 {
		t.Fatalf("best model RAE = %v", best.Report.RAE)
	}

	// Live prediction with the trained model: stream one run's
	// datapoints through the live aggregator and predict.
	allParams := report.ByName(best.Spec.Name, f2pm.AllParams)
	if allParams == nil {
		t.Fatal("all-params model missing")
	}
	la, err := f2pm.NewLiveAggregator(cfg.Aggregation)
	if err != nil {
		t.Fatal(err)
	}
	run := loaded.FailedRuns()[0]
	predictions := 0
	for _, d := range run.Datapoints {
		if row, _, ok := la.Push(d); ok {
			p := allParams.Model.Predict(row)
			if math.IsNaN(p) {
				t.Fatal("live prediction is NaN")
			}
			predictions++
		}
	}
	if predictions < 5 {
		t.Fatalf("only %d live predictions", predictions)
	}
}

func TestPublicMetrics(t *testing.T) {
	pred := []float64{1, 2, 3}
	obs := []float64{1, 2, 5}
	mae, err := f2pm.MAE(pred, obs)
	if err != nil || math.Abs(mae-2.0/3.0) > 1e-12 {
		t.Fatalf("MAE = (%v, %v)", mae, err)
	}
	if _, err := f2pm.RAE(pred, obs); err != nil {
		t.Fatal(err)
	}
	maxae, err := f2pm.MaxAE(pred, obs)
	if err != nil || maxae != 2 {
		t.Fatalf("MaxAE = (%v, %v)", maxae, err)
	}
	smae, err := f2pm.SoftMAE(pred, obs, 3)
	if err != nil || smae != 0 {
		t.Fatalf("SoftMAE = (%v, %v)", smae, err)
	}
}

func TestPublicFeatureHelpers(t *testing.T) {
	names := f2pm.FeatureNames()
	if len(names) != f2pm.NumFeatures {
		t.Fatal("feature names length wrong")
	}
	cond := f2pm.MemoryExhaustion(0.02, 0.02)
	var d f2pm.Datapoint
	d.Features[f2pm.MemUsed] = 1e6
	d.Features[f2pm.MemFree] = 5e5
	if cond(&d) {
		t.Fatal("healthy datapoint failed")
	}
	up := f2pm.ThresholdCondition(f2pm.NumThreads, 10, +1)
	d.Features[f2pm.NumThreads] = 11
	if !up(&d) {
		t.Fatal("threshold condition did not fire")
	}
}

func TestPublicLassoPath(t *testing.T) {
	res := simulateHistory(t)
	ds, err := f2pm.Aggregate(&res.History, f2pm.DefaultAggregationConfig())
	if err != nil {
		t.Fatal(err)
	}
	grid := f2pm.LambdaGrid(0, 6)
	if len(grid) != 7 {
		t.Fatalf("grid = %v", grid)
	}
	path, err := f2pm.LassoPath(ds, grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 7 {
		t.Fatalf("path length = %d", len(path))
	}
	if path[0].NumSelected() == 0 {
		t.Fatal("low λ selected nothing")
	}
}

func TestPublicMonitor(t *testing.T) {
	srv, err := f2pm.NewMonitorServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := f2pm.DialMonitor(srv.Addr(), "facade")
	if err != nil {
		t.Fatal(err)
	}
	var d f2pm.Datapoint
	d.Tgen = 1.5
	if err := cli.SendDatapoint(&d); err != nil {
		t.Fatal(err)
	}
	if err := cli.SendFail(2.0); err != nil {
		t.Fatal(err)
	}
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicModelPersistence(t *testing.T) {
	res := simulateHistory(t)
	cfg := f2pm.DefaultConfig()
	cfg.Aggregation.WindowSec = 15
	cfg.SelectionLambda = 0
	cfg.FeatureLambdas = nil
	cfg.Models = f2pm.DefaultModels(nil)[:3]
	pipe, err := f2pm.NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	report, err := pipe.Run(&res.History)
	if err != nil {
		t.Fatal(err)
	}
	best := report.Best()

	var buf bytes.Buffer
	if err := f2pm.SaveModel(&buf, best.Model); err != nil {
		t.Fatal(err)
	}
	restored, err := f2pm.LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	probe := make([]float64, 30)
	for i := range probe {
		probe[i] = float64(i * 1000)
	}
	if a, b := best.Model.Predict(probe), restored.Predict(probe); a != b {
		t.Fatalf("prediction drift after persistence: %v vs %v", a, b)
	}
}

func TestPublicRTEstimator(t *testing.T) {
	gen := []float64{1.5, 2, 3, 4, 5}
	rts := []float64{0.3, 0.4, 0.6, 0.8, 1.0}
	e, err := f2pm.FitRTEstimator(gen, rts)
	if err != nil {
		t.Fatal(err)
	}
	if e.Pearson < 0.99 {
		t.Fatalf("Pearson = %v", e.Pearson)
	}
	if est := e.Estimate(3.5); math.Abs(est-0.7) > 0.05 {
		t.Fatalf("Estimate(3.5) = %v", est)
	}
	g, r, err := f2pm.RTWindowPairs(
		[]float64{1, 2, 11, 12, 21, 22}, []float64{1.5, 1.5, 2, 2, 3, 3},
		[]float64{1.5, 11.5, 21.5}, []float64{0.3, 0.4, 0.6}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(g) != 3 || len(r) != 3 {
		t.Fatalf("pairs = %d/%d", len(g), len(r))
	}
}

// TestPublicServing exercises the serving layer through the facade:
// pipeline → DeploymentFromReport (Lasso subset carried along) →
// SaveDeployment/LoadDeployment round trip → PredictionService fed by a
// real monitor server, with a hot-swap mid-stream, all under one
// cancellable context.
func TestPublicServing(t *testing.T) {
	res := simulateHistory(t)
	if len(res.History.FailedRuns()) < 3 {
		t.Fatalf("only %d failed runs", len(res.History.FailedRuns()))
	}
	cfg := f2pm.DefaultConfig()
	cfg.Aggregation.WindowSec = 15
	cfg.SelectionLambda = 1e6
	cfg.Models = f2pm.DefaultModels(nil)[:3]
	pipe, err := f2pm.NewPipeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	report, err := pipe.RunContext(ctx, &res.History)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := f2pm.DeploymentFromReport(report)
	if err != nil {
		t.Fatal(err)
	}
	if dep.Aggregation != cfg.Aggregation {
		t.Fatalf("deployment aggregation %+v", dep.Aggregation)
	}
	if report.Best().Features == f2pm.LassoParams && len(dep.Features) == 0 {
		t.Fatal("Lasso winner deployed without its feature subset")
	}

	// Persistence round trip keeps the serving configuration.
	var buf bytes.Buffer
	if err := f2pm.SaveDeployment(&buf, dep); err != nil {
		t.Fatal(err)
	}
	dep2, err := f2pm.LoadDeployment(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if dep2.Aggregation != dep.Aggregation || len(dep2.Features) != len(dep.Features) {
		t.Fatalf("deployment round trip changed config: %+v vs %+v", dep2, dep)
	}

	// Serve the restored deployment behind a real FMS.
	var estimates atomic.Int64
	var lastVersion atomic.Uint64
	svc, err := f2pm.NewPredictionService(ctx,
		f2pm.WithDeployment(dep2),
		f2pm.WithMaxSessions(8),
		f2pm.WithEstimateFunc(func(e f2pm.Estimate) {
			estimates.Add(1)
			lastVersion.Store(e.ModelVersion)
			if math.IsNaN(e.RTTF) {
				t.Errorf("NaN estimate: %+v", e)
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	srv, err := f2pm.NewMonitorServer("127.0.0.1:0",
		f2pm.WithMonitorStream(svc), f2pm.WithMonitorContext(ctx))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := f2pm.DialMonitorContext(ctx, srv.Addr(), "vm-1")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	runs := res.History.FailedRuns()
	stream := func(run f2pm.Run) {
		for i := range run.Datapoints {
			if err := cli.SendDatapoint(&run.Datapoints[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := cli.SendFail(run.FailTime); err != nil {
			t.Fatal(err)
		}
	}
	stream(runs[0])
	waitAtLeast(t, &estimates, 5)

	// Hot-swap the all-params family's model in mid-stream.
	alt := report.ByName(report.Best().Spec.Name, f2pm.AllParams)
	if alt == nil {
		t.Fatal("all-params model missing")
	}
	ver, err := svc.Deploy(&f2pm.Deployment{
		Model: alt.Model, Name: alt.Spec.Name, Aggregation: cfg.Aggregation,
	})
	if err != nil {
		t.Fatal(err)
	}
	before := estimates.Load()
	stream(runs[1])
	waitAtLeast(t, &estimates, before+5)
	if got := lastVersion.Load(); got != ver {
		t.Fatalf("post-swap estimates carry version %d, want %d", got, ver)
	}

	// Cancelling the shared context stops the service and the server.
	cancel()
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.StartSession("late"); !errors.Is(err, f2pm.ErrServiceClosed) {
		t.Fatalf("StartSession after cancel: %v", err)
	}
}

// waitAtLeast polls an estimate counter (the TCP stream is async).
func waitAtLeast(t *testing.T, c *atomic.Int64, want int64) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for c.Load() < want {
		if time.Now().After(deadline) {
			t.Fatalf("timed out: %d estimates, want ≥ %d", c.Load(), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
