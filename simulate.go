package f2pm

import (
	"repro/internal/sysmodel"
	"repro/internal/tpcw"
)

// Simulated test-bed (paper §IV): the TPC-W bookstore on a virtual
// machine, with per-run anomaly injection and a browser fleet.
type (
	// TestbedConfig assembles the simulated experimental environment.
	TestbedConfig = tpcw.TestbedConfig
	// Testbed is the runnable environment.
	Testbed = tpcw.Testbed
	// TestbedResult is the campaign output: data history, response-time
	// probes, per-run metadata.
	TestbedResult = tpcw.Result
	// RunMeta summarizes one test-bed run.
	RunMeta = tpcw.RunInfo
	// RTSample is one emulated-browser response-time observation.
	RTSample = tpcw.RTSample
	// MachineConfig describes the simulated VM.
	MachineConfig = sysmodel.Config
	// ServerConfig describes the servlet-container model.
	ServerConfig = tpcw.ServerConfig
	// BrowserConfig describes the emulated browsers.
	BrowserConfig = tpcw.BrowserConfig
)

// DefaultTestbedConfig returns the paper-scale environment (2 GB VM,
// 40 emulated browsers, load-coupled anomaly injection).
func DefaultTestbedConfig(seed uint64) TestbedConfig { return tpcw.DefaultTestbedConfig(seed) }

// NewTestbed builds a simulated environment; call Run on it to collect a
// data history without any physical test-bed.
func NewTestbed(cfg TestbedConfig) (*Testbed, error) { return tpcw.NewTestbed(cfg) }

// DefaultMachineConfig returns the default simulated VM.
func DefaultMachineConfig() MachineConfig { return sysmodel.DefaultConfig() }
