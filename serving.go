package f2pm

import (
	"context"
	"io"
	"time"

	"repro/internal/ml/modelio"
	"repro/internal/serve"
)

// Serving layer (paper §III-E deployment, §I's proactive-rejuvenation
// loop): a sessioned, context-aware prediction service with a
// hot-swappable model registry. See the package documentation's
// "Serving" section for the end-to-end flow.
type (
	// PredictionService owns the model registry, the per-client
	// sessions, and the batching dispatcher.
	PredictionService = serve.Service
	// ServeSession is one monitored client inside a PredictionService.
	ServeSession = serve.Session
	// Deployment is a servable model plus its feature subset and
	// aggregation config.
	Deployment = serve.Deployment
	// Estimate is one RTTF prediction for one session.
	Estimate = serve.Estimate
	// Alert is an estimate that crossed the alert threshold.
	Alert = serve.Alert
	// ModelSource supplies deployments on demand (retraining pipeline,
	// model file, registry service).
	ModelSource = serve.ModelSource
	// ModelSourceFunc adapts a function to ModelSource.
	ModelSourceFunc = serve.ModelSourceFunc
	// ServeOption configures a PredictionService.
	ServeOption = serve.Option
	// SessionOption configures one session.
	SessionOption = serve.SessionOption
	// ServeStats is a snapshot of service counters (queue depth, batch
	// latency, session/eviction/refresh accounting).
	ServeStats = serve.Stats
	// EvictedSession is the final snapshot of a session removed by the
	// idle-TTL sweep.
	EvictedSession = serve.EvictedSession
	// ShedPolicy configures priority-based load shedding under
	// sustained overload (WithShedPolicy): past a per-shard queue
	// depth, windows of sessions below the priority floor are dropped
	// with exact accounting instead of queued.
	ShedPolicy = serve.ShedPolicy
	// Shed describes one window dropped by the ShedPolicy: the session,
	// its priority, the window timestamp, and the triggering queue
	// depth. Delivered via WithShedFunc; per-priority totals are in
	// ServeStats.ShedByPriority.
	Shed = serve.Shed
	// Placer is the pluggable placement policy: it routes session ids
	// onto shards and (for load-tracked implementations) plans
	// hot-session migrations when per-shard load skews.
	Placer = serve.Placer
	// HashPlacer is the default stateless FNV-hash placer — the exact
	// routing the service used before placement became pluggable.
	HashPlacer = serve.HashPlacer
	// LoadPlacer tracks per-shard window rates and, past its skew
	// watermark, plans migrations of the hottest movable sessions onto
	// the coldest shards via an explicit routing override table.
	LoadPlacer = serve.LoadPlacer
	// LoadPlacerConfig shapes a LoadPlacer (watermark, EWMA weight,
	// per-call move cap).
	LoadPlacerConfig = serve.LoadPlacerConfig
	// ShardLoad is one shard's load snapshot (sessions, queue depth,
	// cumulative windows) — ServeStats.ShardLoads and the Rebalance
	// planning input.
	ShardLoad = serve.ShardLoad
	// PlacementMove is one planned session migration.
	PlacementMove = serve.Move
)

// NewPredictionService builds and starts a prediction service; the
// initial model comes from WithDeployment or WithModelSource.
// Cancelling ctx closes the service (sessions stop, queued windows are
// drained).
func NewPredictionService(ctx context.Context, opts ...ServeOption) (*PredictionService, error) {
	return serve.New(ctx, opts...)
}

// DeploymentFromReport extracts the report's best model as a
// deployment, carrying the Lasso-selected feature subset and the
// aggregation config along — the bridge from Pipeline.Run/Update to
// the serving layer.
func DeploymentFromReport(rep *Report) (*Deployment, error) { return serve.FromReport(rep) }

// WithDeployment sets the service's initial model.
func WithDeployment(dep *Deployment) ServeOption { return serve.WithDeployment(dep) }

// WithModelSource sets where the service pulls deployments from (the
// initial model, and every Refresh).
func WithModelSource(src ModelSource) ServeOption { return serve.WithModelSource(src) }

// WithEstimateFunc registers a service-wide estimate consumer.
func WithEstimateFunc(fn func(Estimate)) ServeOption { return serve.WithEstimateFunc(fn) }

// WithAlertFunc raises an edge-triggered alert whenever a session's
// predicted RTTF crosses below threshold seconds.
func WithAlertFunc(threshold float64, fn func(Alert)) ServeOption {
	return serve.WithAlertFunc(threshold, fn)
}

// WithMaxSessions bounds the number of concurrently active sessions.
func WithMaxSessions(n int) ServeOption { return serve.WithMaxSessions(n) }

// WithBatchInterval coalesces completed windows for up to d before each
// prediction batch.
func WithBatchInterval(d time.Duration) ServeOption { return serve.WithBatchInterval(d) }

// WithSessionTTL evicts sessions idle longer than ttl via a background
// sweep, bounding session memory for long-lived deployments (windows
// already queued are still predicted; evicted clients re-register on
// their next datapoint).
func WithSessionTTL(ttl time.Duration) ServeOption { return serve.WithSessionTTL(ttl) }

// WithSessionEvictFunc consumes each evicted session's final snapshot
// (id, Latest estimate, estimate count) exactly once.
func WithSessionEvictFunc(fn func(EvictedSession)) ServeOption {
	return serve.WithSessionEvictFunc(fn)
}

// WithRefreshInterval pulls a fresh deployment from the ModelSource
// every d and hot-swaps it in, so retrained models go live without the
// caller invoking Refresh.
func WithRefreshInterval(d time.Duration) ServeOption { return serve.WithRefreshInterval(d) }

// WithServeShards sets how many shards (and dispatcher goroutines) the
// prediction service runs: sessions hash onto shards by id, each with
// its own pending queue, dispatcher, and slice of the session map, so
// enqueue, prediction, and the idle sweep contend per shard instead of
// on one service lock. 0 (the default) uses GOMAXPROCS.
func WithServeShards(n int) ServeOption { return serve.WithShards(n) }

// WithShedPolicy enables priority-based load shedding under sustained
// overload: past the policy's per-shard queue depth, completed windows
// of sessions below the priority floor are dropped (ErrWindowShed) and
// counted exactly in ServeStats.ShedWindows instead of queued.
func WithShedPolicy(p ShedPolicy) ServeOption { return serve.WithShedPolicy(p) }

// WithShedFunc registers a consumer for shed-window notifications — one
// call per dropped window with the session id, priority, window
// timestamp, and triggering queue depth, so operators see who loses
// windows under overload, not just how many.
func WithShedFunc(fn func(Shed)) ServeOption { return serve.WithShedFunc(fn) }

// WithPlacement sets the service's placement policy — how session ids
// map onto shards and whether Rebalance can migrate them. The default
// (HashPlacer{}) routes by FNV hash, bitwise-identical to the
// pre-placement service; NewLoadPlacer returns a load-tracked placer
// that plans hot-session migrations past its skew watermark.
func WithPlacement(p Placer) ServeOption { return serve.WithPlacement(p) }

// NewLoadPlacer builds a load-tracked placer: per-shard window rates
// tracked with an EWMA, and a greedy migration planner that moves the
// hottest movable sessions onto the coldest shards once the hottest
// shard's rate exceeds cfg.SkewWatermark times the mean. Zero config
// fields take defaults (watermark 1.5, alpha 0.5, 8 moves per call).
func NewLoadPlacer(cfg LoadPlacerConfig) *LoadPlacer { return serve.NewLoadPlacer(cfg) }

// WithServeClock sets the prediction service's time source (default
// time.Now) — the fault-injection hook that lets a simulation harness
// run the serving tier under a virtual clock.
func WithServeClock(now func() time.Time) ServeOption { return serve.WithClock(now) }

// WithManualDispatch disables the service's background goroutines:
// completed windows accumulate until an explicit Flush, the idle sweep
// runs only via SweepIdleNow, and refresh only via Refresh. Combined
// with WithServeClock this makes the serving tier deterministic under a
// single driving goroutine — the fleetsim harness's replay mode.
func WithManualDispatch() ServeOption { return serve.WithManualDispatch() }

// WithBatchFailpoint installs a chaos-testing hook called before every
// prediction batch with the shard index and batch size; stalling in it
// simulates a slow consumer and builds real backpressure.
func WithBatchFailpoint(fn func(shard, size int)) ServeOption { return serve.WithBatchFailpoint(fn) }

// OnEstimate registers a per-session estimate consumer.
func OnEstimate(fn func(Estimate)) SessionOption { return serve.OnEstimate(fn) }

// WithSessionPriority sets the session's load-shedding priority
// (default 0): under a ShedPolicy, sessions below the policy's
// MinPriority floor are shed first; sessions at or above it are never
// shed.
func WithSessionPriority(p int) SessionOption { return serve.WithSessionPriority(p) }

// SaveDeployment persists a deployment — model plus feature subset and
// aggregation config — as a versioned envelope, so Lasso-selected
// models deploy correctly from the file alone.
func SaveDeployment(w io.Writer, dep *Deployment) error {
	return modelio.SaveWithMeta(w, dep.Model, dep.Meta())
}

// LoadDeployment restores a deployment written by SaveDeployment (or by
// SaveModel, in which case the feature subset is empty and the
// aggregation config zero — the caller supplies the windowing).
func LoadDeployment(r io.Reader) (*Deployment, error) {
	m, meta, err := modelio.LoadWithMeta(r)
	if err != nil {
		return nil, err
	}
	dep := &Deployment{Model: m, Name: m.Name()}
	if meta != nil {
		dep.Features = meta.Features
		if meta.Aggregation != nil {
			dep.Aggregation = *meta.Aggregation
		}
	}
	return dep, nil
}
