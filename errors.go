package f2pm

import (
	"repro/internal/aggregate"
	"repro/internal/core"
	"repro/internal/ml"
	"repro/internal/serve"
	"repro/internal/trace"
)

// The error taxonomy of the public API. Every sentinel is re-exported
// from the subsystem that raises it, so callers can errors.Is against
// f2pm names without importing internal packages:
//
//   - data:     ErrNoFailedRuns, ErrNoLabeledData
//   - training: ErrNoModels, ErrNotRun, ErrNotFitted, ErrNoTrainingData,
//     ErrDimension
//   - serving:  ErrServiceClosed, ErrSessionClosed, ErrTooManySessions,
//     ErrNoModel, ErrDuplicateSession, ErrUnknownFeature,
//     ErrAggregationMismatch
//
// Context cancellation is reported as context.Canceled /
// context.DeadlineExceeded from every context-accepting call
// (Pipeline.RunContext/UpdateContext, the serving layer, the monitor).
var (
	// ErrNoFailedRuns means the history holds no completed failure runs
	// to learn from.
	ErrNoFailedRuns = trace.ErrNoFailedRuns
	// ErrNoLabeledData means aggregation produced no RTTF-labeled rows.
	ErrNoLabeledData = aggregate.ErrNoData
	// ErrNoModels means the pipeline roster is empty.
	ErrNoModels = core.ErrNoModels
	// ErrNotRun is returned by Update on a pipeline that never Ran.
	ErrNotRun = core.ErrNotRun
	// ErrNotFitted is returned by Predict before a successful Fit.
	ErrNotFitted = ml.ErrNotFitted
	// ErrNoTrainingData is returned by Fit on an empty training set.
	ErrNoTrainingData = ml.ErrNoData
	// ErrDimension is returned on inconsistent feature dimensions.
	ErrDimension = ml.ErrDimension
	// ErrServiceClosed is returned once a prediction service stopped.
	ErrServiceClosed = serve.ErrServiceClosed
	// ErrSessionClosed is returned by operations on a closed session.
	ErrSessionClosed = serve.ErrSessionClosed
	// ErrTooManySessions is returned by StartSession past the
	// WithMaxSessions limit.
	ErrTooManySessions = serve.ErrTooManySessions
	// ErrNoModel means no deployment is available to serve.
	ErrNoModel = serve.ErrNoModel
	// ErrDuplicateSession is returned by StartSession for an active id.
	ErrDuplicateSession = serve.ErrDuplicateSession
	// ErrUnknownFeature means a deployment names a column the service's
	// aggregated layout does not produce.
	ErrUnknownFeature = serve.ErrUnknownFeature
	// ErrAggregationMismatch means a deployment was trained under a
	// different windowing configuration than the service runs.
	ErrAggregationMismatch = serve.ErrAggregationMismatch
	// ErrWindowShed means a completed window was dropped by the load
	// shedder (WithShedPolicy): the session's shard was past its queue
	// depth threshold and the session's priority below the policy
	// floor.
	ErrWindowShed = serve.ErrWindowShed
)
