// Command fleetsim runs fleet-scale chaos scenarios against the real
// serving stack: a scenario file describes a fleet of simulated
// monitored applications (memory-leak ramps, the paper's TPC-W shape),
// seeded fault injection (crash-restarts, connection flaps, slow
// consumers, stale-model storms, leak bursts), timed assertions, and a
// metrics report. Runs are deterministic: the same scenario and seed
// always produce the same event log and assertion outcomes.
//
// Usage:
//
//	fleetsim run scenario.yaml           run, print the text report
//	fleetsim run -json scenario.yaml     run, print the JSON report
//	fleetsim run -replay-check s.yaml    run twice, verify determinism
//	fleetsim validate scenario.yaml      parse + validate only
//
// The exit status is 0 only when the scenario passed (all assertions
// held, no internal errors, and — with -replay-check — both runs
// produced identical event logs).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/fleetsim"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "run":
		runCmd(os.Args[2:])
	case "validate":
		validateCmd(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: fleetsim run [-json] [-replay-check] scenario.yaml\n       fleetsim validate scenario.yaml")
	os.Exit(2)
}

func runCmd(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "print the JSON report instead of text")
	replay := fs.Bool("replay-check", false, "run the scenario twice and verify the event logs are identical")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	sc := parse(fs.Arg(0))

	rep, err := fleetsim.Run(sc)
	if err != nil {
		fatal(err)
	}
	if *replay {
		rep2, err := fleetsim.Run(sc)
		if err != nil {
			fatal(fmt.Errorf("replay run: %w", err))
		}
		if rep.Fingerprint() != rep2.Fingerprint() {
			fmt.Fprintln(os.Stderr, "fleetsim: REPLAY MISMATCH — the two runs diverged:")
			fmt.Fprintln(os.Stderr, diffFingerprints(rep.Fingerprint(), rep2.Fingerprint()))
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "fleetsim: replay check passed — identical event logs and assertion outcomes")
	}

	if *jsonOut {
		out, err := rep.JSON()
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(out))
	} else {
		rep.WriteText(os.Stdout)
	}
	if !rep.Passed {
		os.Exit(1)
	}
}

func validateCmd(args []string) {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	sc := parse(fs.Arg(0))
	fmt.Printf("fleetsim: scenario %q valid: %d templates, %d events, %d final assertions\n",
		sc.Name, len(sc.Fleet.Templates), len(sc.Events), len(sc.Final))
}

func parse(path string) *fleetsim.Scenario {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	sc, err := fleetsim.ParseScenario(data)
	if err != nil {
		fatal(err)
	}
	return sc
}

// diffFingerprints returns the first few diverging lines of two
// fingerprints.
func diffFingerprints(a, b string) string {
	al, bl := splitLines(a), splitLines(b)
	out := ""
	shown := 0
	for i := 0; i < len(al) || i < len(bl); i++ {
		var la, lb string
		if i < len(al) {
			la = al[i]
		}
		if i < len(bl) {
			lb = bl[i]
		}
		if la == lb {
			continue
		}
		out += fmt.Sprintf("  line %d:\n    run 1: %s\n    run 2: %s\n", i+1, la, lb)
		if shown++; shown >= 5 {
			out += "  ..."
			break
		}
	}
	return out
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fleetsim:", err)
	os.Exit(1)
}
