// Command fmr runs the Failure-prediction Model Registry — the control
// plane between one trainer and N serving nodes. The trainer publishes
// deployment envelopes with PUT /v1/model (cmd/f2pm -publish); serving
// nodes (cmd/fms -registry) poll with conditional GETs and heartbeat
// their health; GET /v1/health shows the fleet: which nodes are alive,
// which have converged to the current model, which are serving stale.
//
// A registry restart must not cost the fleet its model, so -persist
// writes every accepted publish to disk (atomically) and reloads it on
// startup. Serving nodes additionally keep their own last-good cache —
// the registry is a convergence point, not a single point of failure.
//
// Usage:
//
//	fmr -listen :7071 -persist registry.model
//	fmr -listen :7071 -model best.model     # seed from a trained model
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/registry"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:7071", "HTTP listen address")
		persist  = flag.String("persist", "", "persist published envelopes to this file and reload on startup")
		seed     = flag.String("model", "", "seed the registry with this envelope file at startup")
		liveness = flag.Duration("liveness", 30*time.Second, "heartbeat age beyond which a node counts as dead")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := []registry.Option{registry.WithLivenessWindow(*liveness)}
	if *persist != "" {
		opts = append(opts, registry.WithPublishHook(func(p registry.Published) {
			if err := writeAtomic(*persist, p.Data); err != nil {
				fmt.Fprintln(os.Stderr, "fmr: persist:", err)
				return
			}
			fmt.Fprintf(os.Stderr, "fmr: published v%d kind=%s etag=%s (persisted)\n",
				p.Version, p.Kind, p.ETag)
		}))
	} else {
		opts = append(opts, registry.WithPublishHook(func(p registry.Published) {
			fmt.Fprintf(os.Stderr, "fmr: published v%d kind=%s etag=%s\n",
				p.Version, p.Kind, p.ETag)
		}))
	}
	reg := registry.New(opts...)

	// Seed order: an explicit -model wins; otherwise restore the last
	// persisted publish so a restarted registry keeps serving.
	seedFrom := *seed
	if seedFrom == "" && *persist != "" {
		if _, err := os.Stat(*persist); err == nil {
			seedFrom = *persist
		}
	}
	if seedFrom != "" {
		data, err := os.ReadFile(seedFrom)
		if err != nil {
			fatal(err)
		}
		res, err := reg.SetModel(data)
		if err != nil {
			fatal(fmt.Errorf("seeding from %s: %w", seedFrom, err))
		}
		fmt.Fprintf(os.Stderr, "fmr: seeded v%d etag=%s from %s\n", res.Version, res.ETag, seedFrom)
	}

	srv := &http.Server{Addr: *listen, Handler: reg}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "fmr: registry listening on %s\n", *listen)

	select {
	case <-ctx.Done():
	case err := <-errc:
		fatal(err)
	}
	// Graceful drain: stop accepting, let in-flight publishes and polls
	// finish, then report the final fleet state.
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "fmr: shutdown:", err)
	}
	h := reg.Health()
	fmt.Fprintf(os.Stderr, "fmr: stopped at model v%d; %d/%d nodes alive, %d stale\n",
		h.ModelVersion, h.AliveNodes, len(h.Nodes), h.StaleNodes)
}

// writeAtomic writes data via a temp file + rename so a crash mid-write
// never leaves a torn envelope where the next startup will read it.
func writeAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".fmr-persist-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fmr:", err)
	os.Exit(1)
}
