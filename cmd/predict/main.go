// Command predict deploys a trained F2PM model: it loads a model saved
// by `f2pm -save-model` (or any SaveDeployment envelope), feeds a
// stream of datapoints through a prediction-service session with the
// same windowing the training used, and emits Remaining-Time-To-Failure
// estimates. When the prediction drops below -act-below, it runs the
// given command — the paper's proactive rejuvenation action (§I).
//
// Models saved with deployment metadata (format v2) carry their feature
// subset and aggregation config, so Lasso-selected models deploy
// correctly: live rows are projected through the stored subset. Older
// all-params envelopes still load; their window size comes from
// -window.
//
// Two input modes:
//
//	predict -model best.model -replay history.csv   # replay a CSV history
//	predict -model best.model -interval 1.5s        # live from /proc
//
// SIGINT/SIGTERM shut down cleanly: the final partial window is still
// predicted before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	f2pm "repro"
)

func main() {
	var (
		modelPath = flag.String("model", "best.model", "model file from f2pm -save-model")
		replay    = flag.String("replay", "", "replay datapoints from this history CSV instead of sampling /proc")
		interval  = flag.Duration("interval", 1500*time.Millisecond, "live sampling interval")
		procRoot  = flag.String("proc", "/proc", "procfs mount point (live mode)")
		window    = flag.Float64("window", 30, "aggregation window in seconds (only for models saved without metadata)")
		actBelow  = flag.Float64("act-below", 0, "run -action when predicted RTTF falls below this many seconds (0 disables)")
		action    = flag.String("action", "", "command to run on low-RTTF predictions (e.g. a rejuvenation script)")
		maxRows   = flag.Int("max-predictions", 0, "stop after this many predictions (0 = unlimited; useful for testing)")
	)
	flag.Parse()

	mf, err := os.Open(*modelPath)
	if err != nil {
		fatal(err)
	}
	dep, err := f2pm.LoadDeployment(mf)
	mf.Close()
	if err != nil {
		fatal(err)
	}
	if dep.Aggregation.Validate() != nil {
		// Pre-metadata envelope: the training windowing is not in the
		// file, so take it from the flags (all-params layout).
		cfg := f2pm.DefaultAggregationConfig()
		cfg.WindowSec = *window
		dep.Aggregation = cfg
	}
	if len(dep.Features) > 0 {
		fmt.Fprintf(os.Stderr, "predict: loaded %s model from %s (%d selected features)\n",
			dep.Name, *modelPath, len(dep.Features))
	} else {
		fmt.Fprintf(os.Stderr, "predict: loaded %s model from %s (all parameters)\n", dep.Name, *modelPath)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var sess *f2pm.ServeSession
	var emitted atomic.Int64
	// The service runs on its own context so the shutdown path below
	// controls the drain order explicitly: flush the final partial
	// window first, then close — a signal must not race the service
	// into closing before that flush lands.
	svc, err := f2pm.NewPredictionService(context.Background(),
		f2pm.WithDeployment(dep),
		f2pm.WithEstimateFunc(func(e f2pm.Estimate) {
			n := emitted.Add(1)
			if *maxRows > 0 && n > int64(*maxRows) {
				return // drained windows beyond the cap stay silent
			}
			fmt.Printf("t=%.1fs predicted_rttf=%.1fs\n", e.Tgen, e.RTTF)
			if *maxRows > 0 && n == int64(*maxRows) {
				cancel()
			}
		}),
		f2pm.WithAlertFunc(*actBelow, func(a f2pm.Alert) {
			if *action == "" {
				fmt.Fprintf(os.Stderr, "predict: RTTF %.1fs below %.1fs\n", a.RTTF, a.Threshold)
				return
			}
			fmt.Fprintf(os.Stderr, "predict: RTTF %.1fs below %.1fs — running action\n", a.RTTF, a.Threshold)
			cmd := exec.Command("/bin/sh", "-c", *action)
			cmd.Stdout = os.Stderr
			cmd.Stderr = os.Stderr
			if err := cmd.Run(); err != nil {
				fmt.Fprintln(os.Stderr, "predict: action failed:", err)
			}
			sess.Reset() // the action presumably restarted the system
		}),
	)
	if err != nil {
		fatal(err)
	}
	defer svc.Close()
	if sess, err = svc.StartSession("local"); err != nil {
		fatal(err)
	}

	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			fatal(err)
		}
		h, err := f2pm.ReadHistoryCSV(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		for _, run := range h.Runs {
			for _, d := range run.Datapoints {
				if ctx.Err() != nil {
					// Graceful stop mid-replay: the partial window
					// buffered in the aggregator still gets predicted.
					sess.Flush()
					svc.Flush()
					return
				}
				if err := sess.Push(d); err != nil {
					return
				}
			}
			sess.EndRun() // predict the final partial window, then reset
			svc.Flush()   // keep replay output deterministic
		}
		svc.Flush()
		return
	}

	// Live mode: sample /proc until cancelled.
	src := f2pm.NewProcSource(*procRoot)
	ticker := time.NewTicker(*interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			// Graceful shutdown: the current partial window still gets
			// its estimate before the service drains.
			sess.Flush()
			svc.Close()
			return
		case <-ticker.C:
			d, err := src.Sample()
			if err != nil {
				fmt.Fprintln(os.Stderr, "predict: sample:", err)
				continue
			}
			if err := sess.Push(d); err != nil {
				return
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "predict:", err)
	os.Exit(1)
}
