// Command predict deploys a trained F2PM model: it loads a model saved
// by `f2pm -save-model`, aggregates a stream of datapoints with the same
// windowing the training used, and emits Remaining-Time-To-Failure
// estimates. When the prediction drops below -act-below, it runs the
// given command — the paper's proactive rejuvenation action (§I).
//
// Two input modes:
//
//	predict -model best.model -replay history.csv   # replay a CSV history
//	predict -model best.model -interval 1.5s        # live from /proc
//
// The model must have been trained on all parameters (cmd/f2pm with
// -lambda 0, or just use the all-params best), since live rows carry the
// full 30-column layout.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"time"

	f2pm "repro"
)

func main() {
	var (
		modelPath = flag.String("model", "best.model", "model file from f2pm -save-model")
		replay    = flag.String("replay", "", "replay datapoints from this history CSV instead of sampling /proc")
		interval  = flag.Duration("interval", 1500*time.Millisecond, "live sampling interval")
		procRoot  = flag.String("proc", "/proc", "procfs mount point (live mode)")
		window    = flag.Float64("window", 30, "aggregation window in seconds (must match training)")
		actBelow  = flag.Float64("act-below", 0, "run -action when predicted RTTF falls below this many seconds (0 disables)")
		action    = flag.String("action", "", "command to run on low-RTTF predictions (e.g. a rejuvenation script)")
		maxRows   = flag.Int("max-predictions", 0, "stop after this many predictions (0 = unlimited; useful for testing)")
	)
	flag.Parse()

	mf, err := os.Open(*modelPath)
	if err != nil {
		fatal(err)
	}
	model, err := f2pm.LoadModel(mf)
	mf.Close()
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "predict: loaded %s model from %s\n", model.Name(), *modelPath)

	aggCfg := f2pm.DefaultAggregationConfig()
	aggCfg.WindowSec = *window
	la, err := f2pm.NewLiveAggregator(aggCfg)
	if err != nil {
		fatal(err)
	}

	emitted := 0
	emit := func(tgen float64, row []float64) bool {
		rttf := model.Predict(row)
		fmt.Printf("t=%.1fs predicted_rttf=%.1fs\n", tgen, rttf)
		emitted++
		if *actBelow > 0 && rttf >= 0 && rttf < *actBelow && *action != "" {
			fmt.Fprintf(os.Stderr, "predict: RTTF %.1fs below %.1fs — running action\n", rttf, *actBelow)
			cmd := exec.Command("/bin/sh", "-c", *action)
			cmd.Stdout = os.Stderr
			cmd.Stderr = os.Stderr
			if err := cmd.Run(); err != nil {
				fmt.Fprintln(os.Stderr, "predict: action failed:", err)
			}
			la.Reset() // the action presumably restarted the system
		}
		return *maxRows > 0 && emitted >= *maxRows
	}

	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			fatal(err)
		}
		h, err := f2pm.ReadHistoryCSV(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		for _, run := range h.Runs {
			la.Reset()
			for _, d := range run.Datapoints {
				if row, tgen, ok := la.Push(d); ok {
					if emit(tgen, row) {
						return
					}
				}
			}
		}
		return
	}

	// Live mode: sample /proc forever.
	src := f2pm.NewProcSource(*procRoot)
	for {
		d, err := src.Sample()
		if err != nil {
			fmt.Fprintln(os.Stderr, "predict: sample:", err)
		} else if row, tgen, ok := la.Push(d); ok {
			if emit(tgen, row) {
				return
			}
		}
		time.Sleep(*interval)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "predict:", err)
	os.Exit(1)
}
