// Command bench runs the repository benchmark suite via `go test -bench`
// and writes the parsed results as machine-readable JSON
// (BENCH_<date>.json by default), so before/after numbers for a
// performance PR can be committed and diffed.
//
// Usage:
//
//	go run ./cmd/bench [-bench regexp] [-benchtime 1x] [-pkg ./...] [-out file] [-label note]
//	    [-compare baseline.json] [-tolerance 0.15] [-trend N] [-trend-glob 'BENCH_*.json']
//
// With -compare, the freshly measured results are diffed against a
// previously committed report: every benchmark present in both is
// checked on ns/op and allocs/op, and the command exits non-zero when
// any metric regresses by more than the tolerance fraction — the
// guard-rail CI runs against the committed BENCH file.
//
// With -trend N, the last N committed BENCH_*.json reports (by date,
// oldest first) plus the fresh measurement are lined up per benchmark
// and the ns/op deltas between consecutive reports are printed — the
// slow-regression radar the single-baseline -compare gate misses.
// Trend output is informational only and never fails the run.
//
// With -scaling, the command additionally sweeps the -scaling-bench
// benchmarks over GOMAXPROCS powers of two up to NumCPU (one `go test
// -cpu N` invocation each) and appends the curve to the report with
// /gomaxprocs=N name suffixes — the shards × cores scaling surface.
// -scaling-min-speedup S turns the curve into a gate: the run fails
// unless shards=8 beats shards=1 by at least S× at the highest
// GOMAXPROCS measured. CI only enforces the gate on runners with
// enough cores; on smaller boxes the sweep still records the curve.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// File is the serialized benchmark report. GOMAXPROCS and NumCPU stamp
// the machine the numbers came from — a -scaling curve recorded on a
// 1-core box is a flat line for hardware reasons, and the stamp keeps
// it from being mistaken for a multicore result.
type File struct {
	Date       string   `json:"date"`
	Label      string   `json:"label,omitempty"`
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	NumCPU     int      `json:"num_cpu,omitempty"`
	Bench      string   `json:"bench"`
	BenchTime  string   `json:"benchtime"`
	Packages   string   `json:"packages"`
	Results    []Result `json:"results"`
}

// benchLine matches `BenchmarkName-8  12  945 ns/op  64 B/op  3 allocs/op`
// (the memory columns are optional).
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	benchPat := flag.String("bench", ".", "benchmark regexp passed to go test -bench")
	benchTime := flag.String("benchtime", "1x", "go test -benchtime value")
	pkg := flag.String("pkg", "./...", "packages to benchmark")
	out := flag.String("out", "", "output file (default BENCH_<date>.json)")
	label := flag.String("label", "", "free-form label recorded in the report")
	compare := flag.String("compare", "", "baseline BENCH json to diff against; exit non-zero on regressions")
	tolerance := flag.Float64("tolerance", 0.15, "allowed regression fraction for -compare (0.15 = +15%)")
	trendN := flag.Int("trend", 0, "print per-benchmark ns/op deltas across the last N committed BENCH reports (0 disables)")
	trendGlob := flag.String("trend-glob", "BENCH_*.json", "glob of committed BENCH reports for -trend")
	scaling := flag.Bool("scaling", false, "sweep -scaling-bench over GOMAXPROCS powers of two up to NumCPU and append the curve to the report")
	scalingBench := flag.String("scaling-bench", "BenchmarkShardedDispatch", "benchmark regexp for the -scaling sweep")
	scalingPkg := flag.String("scaling-pkg", "./internal/serve/", "package for the -scaling sweep")
	scalingMin := flag.Float64("scaling-min-speedup", 0, "fail unless shards=8 beats shards=1 by this factor at the highest GOMAXPROCS swept (0 disables)")
	flag.Parse()

	results, err := run(*benchPat, *benchTime, *pkg, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	if *scaling {
		sres, err := runScaling(*scalingBench, *benchTime, *scalingPkg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench: scaling sweep:", err)
			os.Exit(1)
		}
		results = append(results, sres...)
	}
	date := time.Now().Format("2006-01-02")
	path := *out
	if path == "" {
		path = "BENCH_" + date + ".json"
	}
	report := File{
		Date:       date,
		Label:      *label,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Bench:      *benchPat,
		BenchTime:  *benchTime,
		Packages:   *pkg,
		Results:    results,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d results to %s\n", len(results), path)

	if *trendN > 0 {
		// Informational only: a broken history file must not fail a run
		// whose measurement succeeded.
		if err := printTrend(*trendGlob, *trendN, path, report); err != nil {
			fmt.Fprintln(os.Stderr, "bench: trend:", err)
		}
	}

	if *compare != "" {
		regressions, err := compareBaseline(*compare, results, *tolerance)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		if regressions > 0 {
			fmt.Fprintf(os.Stderr, "bench: %d metric(s) regressed beyond +%.0f%%\n", regressions, *tolerance*100)
			os.Exit(1)
		}
	}

	if *scaling && *scalingMin > 0 {
		if err := checkScaling(results, *scalingMin); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
	}
}

// scalingProcs is the GOMAXPROCS sweep grid: powers of two up to
// NumCPU, plus NumCPU itself when it is not a power of two.
func scalingProcs() []int {
	maxp := runtime.NumCPU()
	var procs []int
	for p := 1; p <= maxp; p *= 2 {
		procs = append(procs, p)
	}
	if procs[len(procs)-1] != maxp {
		procs = append(procs, maxp)
	}
	return procs
}

// runScaling runs the scaling benchmarks once per grid point (one
// `go test -cpu N` invocation each, so every point is a clean process)
// and suffixes the result names with the GOMAXPROCS that produced them.
func runScaling(benchPat, benchTime, pkg string) ([]Result, error) {
	var out []Result
	for _, p := range scalingProcs() {
		res, err := run(benchPat, benchTime, pkg, p)
		if err != nil {
			return nil, fmt.Errorf("GOMAXPROCS=%d: %w", p, err)
		}
		for _, r := range res {
			r.Name = fmt.Sprintf("%s/gomaxprocs=%d", r.Name, p)
			out = append(out, r)
		}
	}
	return out, nil
}

// checkScaling gates on the sharding speedup: at the highest
// GOMAXPROCS swept, the shards=8 configuration must beat shards=1 by
// at least min ×.
func checkScaling(results []Result, min float64) error {
	best := 0
	perProc := map[int]map[string]float64{} // procs → shards variant → ns/op
	re := regexp.MustCompile(`^(.+)/(shards=\d+)/gomaxprocs=(\d+)$`)
	for _, r := range results {
		m := re.FindStringSubmatch(r.Name)
		if m == nil {
			continue
		}
		p, _ := strconv.Atoi(m[3])
		if perProc[p] == nil {
			perProc[p] = map[string]float64{}
		}
		perProc[p][m[2]] = r.NsPerOp
		if p > best {
			best = p
		}
	}
	if best == 0 {
		return fmt.Errorf("scaling gate: no /shards=N/gomaxprocs=N results to check")
	}
	single, ok1 := perProc[best]["shards=1"]
	sharded, ok8 := perProc[best]["shards=8"]
	if !ok1 || !ok8 {
		return fmt.Errorf("scaling gate: missing shards=1 or shards=8 at gomaxprocs=%d", best)
	}
	speedup := single / sharded
	fmt.Printf("scaling gate: gomaxprocs=%d shards=1 %.0f ns/op vs shards=8 %.0f ns/op — %.2fx (want >= %.2fx)\n",
		best, single, sharded, speedup, min)
	if speedup < min {
		return fmt.Errorf("scaling gate: sharding speedup %.2fx below the %.2fx floor at gomaxprocs=%d", speedup, min, best)
	}
	return nil
}

// printTrend lines up the last keep committed reports matching glob
// (sorted by date, then filename) plus the fresh report, and prints the
// ns/op series with consecutive deltas for every benchmark the fresh
// run measured.
func printTrend(glob string, keep int, freshPath string, fresh File) error {
	paths, err := filepath.Glob(glob)
	if err != nil {
		return fmt.Errorf("trend glob %q: %w", glob, err)
	}
	type dated struct {
		path string
		file File
	}
	var reports []dated
	for _, p := range paths {
		if same, err := filepath.Abs(p); err == nil {
			if fp, err2 := filepath.Abs(freshPath); err2 == nil && same == fp {
				continue // the file just written is appended as the newest point
			}
		}
		raw, err := os.ReadFile(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: skipping %s: %v\n", p, err)
			continue
		}
		var f File
		if err := json.Unmarshal(raw, &f); err != nil {
			fmt.Fprintf(os.Stderr, "bench: skipping %s (not a BENCH report): %v\n", p, err)
			continue
		}
		reports = append(reports, dated{path: p, file: f})
	}
	sort.Slice(reports, func(i, j int) bool {
		if reports[i].file.Date != reports[j].file.Date {
			return reports[i].file.Date < reports[j].file.Date
		}
		return reports[i].path < reports[j].path
	})
	if len(reports) > keep {
		reports = reports[len(reports)-keep:]
	}
	reports = append(reports, dated{path: freshPath + " (new)", file: fresh})

	fmt.Printf("\ntrend across %d report(s):\n", len(reports))
	for _, r := range reports {
		// The cpu stamp disambiguates cross-machine points: a report
		// without num_cpu predates the stamp and is marked unknown.
		cpus := "cpus=?"
		if r.file.NumCPU > 0 {
			cpus = fmt.Sprintf("cpus=%d", r.file.NumCPU)
		}
		fmt.Printf("  %-10s %s (%s) [gomaxprocs=%d %s]\n",
			r.file.Date, r.path, r.file.Label, r.file.GOMAXPROCS, cpus)
	}
	for _, want := range fresh.Results {
		series := make([]float64, 0, len(reports))
		for _, r := range reports {
			for _, res := range r.file.Results {
				if res.Name == want.Name {
					series = append(series, res.NsPerOp)
					break
				}
			}
		}
		if len(series) < 2 {
			fmt.Printf("%-40s (only in the fresh run)\n", want.Name)
			continue
		}
		var b strings.Builder
		fmt.Fprintf(&b, "%-40s %12.0f", want.Name, series[0])
		for i := 1; i < len(series); i++ {
			fmt.Fprintf(&b, " -> %12.0f (%+5.1f%%)", series[i], (series[i]/series[i-1]-1)*100)
		}
		fmt.Fprintf(&b, "   total %+5.1f%%", (series[len(series)-1]/series[0]-1)*100)
		fmt.Println(b.String())
	}
	return nil
}

// compareBaseline diffs the fresh results against a committed BENCH
// report, printing one line per shared benchmark and returning the
// number of metrics (ns/op, allocs/op) that regressed beyond the
// tolerance fraction. Benchmarks present only on one side are noted
// but never fail the run; a small absolute slack on allocs keeps
// near-zero counts from flapping.
func compareBaseline(path string, fresh []Result, tol float64) (int, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("reading baseline: %w", err)
	}
	var base File
	if err := json.Unmarshal(raw, &base); err != nil {
		return 0, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	byName := make(map[string]Result, len(base.Results))
	for _, r := range base.Results {
		byName[r.Name] = r
	}
	const allocSlack = 8
	regressions := 0
	compared := 0
	for _, r := range fresh {
		b, ok := byName[r.Name]
		if !ok {
			fmt.Printf("%-40s (not in baseline)\n", r.Name)
			continue
		}
		compared++
		nsRatio := r.NsPerOp / b.NsPerOp
		status := "ok"
		if r.NsPerOp > b.NsPerOp*(1+tol) {
			status = "REGRESSED ns/op"
			regressions++
		}
		if r.AllocsPerOp > int64(float64(b.AllocsPerOp)*(1+tol))+allocSlack {
			if status == "ok" {
				status = "REGRESSED allocs/op"
			} else {
				status += "+allocs"
			}
			regressions++
		}
		fmt.Printf("%-40s ns/op %12.0f -> %12.0f (%+5.1f%%)  allocs %7d -> %7d  %s\n",
			r.Name, b.NsPerOp, r.NsPerOp, (nsRatio-1)*100, b.AllocsPerOp, r.AllocsPerOp, status)
	}
	if compared == 0 {
		return 0, fmt.Errorf("no benchmarks shared with baseline %s", path)
	}
	return regressions, nil
}

// run executes go test -bench and parses the output. A positive cpu
// pins GOMAXPROCS for the benchmark process (`go test -cpu`); 0
// inherits the environment.
func run(benchPat, benchTime, pkg string, cpu int) ([]Result, error) {
	args := []string{
		"test", "-run", "^$",
		"-bench", benchPat,
		"-benchtime", benchTime,
		"-benchmem",
	}
	if cpu > 0 {
		args = append(args, "-cpu", strconv.Itoa(cpu))
	}
	args = append(args, pkg)
	cmd := exec.Command("go", args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	fmt.Fprintln(os.Stderr, "running: go", strings.Join(args, " "))
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go test: %w", err)
	}
	var results []Result
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		r := Result{Name: m[1], Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			r.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			r.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("no benchmark lines parsed")
	}
	return results, nil
}
