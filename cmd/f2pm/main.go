// Command f2pm runs the full F2PM pipeline (paper §III) on a data
// history CSV: aggregation, Lasso feature selection, model generation
// with all six methods, and validation, printing the per-model metric
// tables so the user can pick the best-suited model.
//
// Usage:
//
//	f2pm -in history.csv -window 30 -lambda 1e5 -smae 0.10
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"

	f2pm "repro"
)

func main() {
	var (
		in       = flag.String("in", "history.csv", "input data-history CSV ('-' for stdin)")
		window   = flag.Float64("window", 30, "aggregation window (seconds)")
		lambda   = flag.Float64("lambda", 1e5, "feature-selection λ (0 disables the reduced family)")
		smae     = flag.Float64("smae", 0.10, "S-MAE tolerance as a fraction of mean RTTF")
		valFrac  = flag.Float64("val", 0.3, "validation fraction (held-out runs)")
		fast     = flag.Bool("fast", false, "skip the SVM family (much faster)")
		parallel = flag.Int("parallel", runtime.NumCPU(), "concurrent model training (timings get noisy above 1)")
		saveBest = flag.String("save-model", "", "write the best model to this path for deployment")
		publish  = flag.String("publish", "", "publish the best model to this registry URL (cmd/fmr)")
	)
	flag.Parse()

	r := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	history, err := f2pm.ReadHistoryCSV(r)
	if err != nil {
		fatal(err)
	}

	cfg := f2pm.DefaultConfig()
	cfg.Aggregation.WindowSec = *window
	cfg.SelectionLambda = *lambda
	cfg.SMAEFraction = *smae
	cfg.ValidationFrac = *valFrac
	cfg.Parallelism = *parallel
	models := f2pm.DefaultModels(cfg.FeatureLambdas)
	if *fast {
		var kept []f2pm.ModelSpec
		for _, m := range models {
			if m.Name == "svm" || m.Name == "svm2" {
				continue
			}
			kept = append(kept, m)
		}
		models = kept
	}
	cfg.Models = models

	pipe, err := f2pm.NewPipeline(cfg)
	if err != nil {
		fatal(err)
	}
	report, err := pipe.Run(history)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("dataset: %d training rows, %d validation rows, %d columns\n",
		report.TrainRows, report.ValRows, report.Columns)
	fmt.Printf("S-MAE tolerance: %.1f s (%.0f%% of mean RTTF)\n\n", report.SMAEThreshold, *smae*100)

	if len(report.Path) > 0 {
		fmt.Println("Lasso regularization path (training set):")
		for _, pp := range report.Path {
			fmt.Printf("  lambda=%-8g selected=%d\n", pp.Lambda, pp.NumSelected())
		}
		fmt.Println()
	}
	if report.Selection.NumSelected() > 0 {
		fmt.Printf("selected features at lambda=%g:\n", report.Selection.Lambda)
		for _, w := range report.Selection.SortedWeights() {
			fmt.Printf("  %-28s %.12f\n", w.Name, w.Beta)
		}
		fmt.Println()
	}

	// Per-model table, sorted by S-MAE within each family.
	type row struct {
		res *f2pm.ModelResult
	}
	var rows []row
	for i := range report.Results {
		rows = append(rows, row{res: &report.Results[i]})
	}
	sort.SliceStable(rows, func(i, j int) bool {
		a, b := rows[i].res, rows[j].res
		if a.Features != b.Features {
			return a.Features == f2pm.AllParams
		}
		return a.Report.SoftMAE < b.Report.SoftMAE
	})
	fmt.Printf("%-22s %-6s %10s %8s %10s %10s %12s %12s\n",
		"model", "feats", "S-MAE(s)", "RAE", "MAE(s)", "MaxAE(s)", "train", "validate")
	for _, r := range rows {
		res := r.res
		if res.Err != nil {
			fmt.Printf("%-22s %-6s  FAILED: %v\n", res.Spec.DisplayName, res.Features, res.Err)
			continue
		}
		m := res.Report
		fmt.Printf("%-22s %-6s %10.3f %8.3f %10.3f %10.3f %12s %12s\n",
			res.Spec.DisplayName, res.Features, m.SoftMAE, m.RAE, m.MAE, m.MaxAE,
			m.TrainingTime.Round(100_000).String(), m.ValidationTime.Round(1000).String())
	}
	if best := report.Best(); best != nil {
		fmt.Printf("\nbest model: %s (%s features), S-MAE %.3f s\n",
			best.Spec.DisplayName, best.Features, best.Report.SoftMAE)
		if *publish != "" {
			dep, err := f2pm.DeploymentFromReport(report)
			if err != nil {
				fatal(err)
			}
			res, err := f2pm.PublishDeployment(context.Background(), *publish, dep)
			if err != nil {
				fatal(err)
			}
			if res.Changed {
				fmt.Printf("published model v%d to %s (etag %s)\n", res.Version, *publish, res.ETag)
			} else {
				fmt.Printf("registry %s already serves these bytes (v%d, etag %s)\n", *publish, res.Version, res.ETag)
			}
		}
		if *saveBest != "" {
			dep, err := f2pm.DeploymentFromReport(report)
			if err != nil {
				fatal(err)
			}
			f, err := os.Create(*saveBest)
			if err != nil {
				fatal(err)
			}
			// The deployment envelope carries the feature subset and
			// aggregation config, so Lasso-family winners deploy
			// correctly (cmd/predict projects live rows through it).
			if err := f2pm.SaveDeployment(f, dep); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("saved model to %s (load with f2pm.LoadDeployment)\n", *saveBest)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "f2pm:", err)
	os.Exit(1)
}
