// Command fms runs the Feature Monitor Server (paper §III-E): it accepts
// FMC connections over TCP, assembles each client's datapoint stream into
// a data history, and writes one CSV per client on shutdown
// (SIGINT/SIGTERM) or after -duration.
//
// With -serve-model, the FMS also serves predictions: every received
// datapoint feeds the sender's session in a prediction service, RTTF
// estimates stream to stdout, and predictions below -alert-below are
// flagged — the paper's deployment loop (monitor → aggregate → predict
// → act) in one process.
//
// Usage:
//
//	fms -listen :7070 -outdir histories/
//	fms -listen :7070 -serve-model best.model -alert-below 60
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	f2pm "repro"
)

func main() {
	var (
		listen     = flag.String("listen", "127.0.0.1:7070", "TCP listen address")
		outdir     = flag.String("outdir", ".", "directory for per-client history CSVs")
		duration   = flag.Duration("duration", 0, "stop after this long (0 = until SIGINT/SIGTERM)")
		servePath  = flag.String("serve-model", "", "serve live RTTF predictions with this model file")
		alertBelow = flag.Float64("alert-below", 0, "flag predictions below this many seconds (0 disables)")
		window     = flag.Float64("window", 30, "aggregation window for models saved without metadata")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *duration)
		defer cancel()
	}

	var (
		svc  *f2pm.PredictionService
		opts []f2pm.MonitorServerOption
	)
	opts = append(opts, f2pm.WithMonitorContext(ctx))
	if *servePath != "" {
		mf, err := os.Open(*servePath)
		if err != nil {
			fatal(err)
		}
		dep, err := f2pm.LoadDeployment(mf)
		mf.Close()
		if err != nil {
			fatal(err)
		}
		if dep.Aggregation.Validate() != nil {
			cfg := f2pm.DefaultAggregationConfig()
			cfg.WindowSec = *window
			dep.Aggregation = cfg
		}
		// The service deliberately does NOT share the signal context:
		// it must outlive the monitor server during the ordered drain
		// below, or connection handlers still delivering buffered
		// datapoints would race its self-shutdown and lose windows.
		svc, err = f2pm.NewPredictionService(context.Background(),
			f2pm.WithDeployment(dep),
			f2pm.WithEstimateFunc(func(e f2pm.Estimate) {
				fmt.Printf("client=%s t=%.1fs predicted_rttf=%.1fs model=%s/v%d\n",
					e.SessionID, e.Tgen, e.RTTF, e.ModelName, e.ModelVersion)
			}),
			f2pm.WithAlertFunc(*alertBelow, func(a f2pm.Alert) {
				fmt.Fprintf(os.Stderr, "fms: ALERT client=%s RTTF %.1fs below %.1fs\n",
					a.SessionID, a.RTTF, a.Threshold)
			}),
		)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "fms: serving %s model predictions\n", dep.Name)
		opts = append(opts, f2pm.WithMonitorStream(svc))
	}

	srv, err := f2pm.NewMonitorServer(*listen, opts...)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "fms: listening on %s\n", srv.Addr())

	<-ctx.Done()
	// Drain in dependency order: the server stops feeding first, then
	// the service finishes its queued predictions, then the assembled
	// histories (including any unfinished final run) are written out —
	// no datapoint received before shutdown is lost.
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "fms: close:", err)
	}
	if svc != nil {
		svc.Close()
		st := svc.Stats()
		fmt.Fprintf(os.Stderr, "fms: served %d predictions (%d alerts) across %d sessions\n",
			st.Predictions, st.Alerts, st.Sessions)
	}

	for _, id := range srv.Clients() {
		h, ok := srv.History(id)
		if !ok {
			continue
		}
		path := filepath.Join(*outdir, fmt.Sprintf("history-%s.csv", id))
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fms:", err)
			continue
		}
		if err := f2pm.WriteHistoryCSV(f, h); err != nil {
			fmt.Fprintln(os.Stderr, "fms:", err)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "fms: wrote %s (%d runs, %d datapoints)\n",
			path, len(h.Runs), h.TotalDatapoints())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fms:", err)
	os.Exit(1)
}
