// Command fms runs the Feature Monitor Server (paper §III-E): it accepts
// FMC connections over TCP, assembles each client's datapoint stream into
// a data history, and writes one CSV per client on shutdown (SIGINT) or
// after -duration.
//
// Usage:
//
//	fms -listen :7070 -outdir histories/
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"time"

	f2pm "repro"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:7070", "TCP listen address")
		outdir   = flag.String("outdir", ".", "directory for per-client history CSVs")
		duration = flag.Duration("duration", 0, "stop after this long (0 = until SIGINT)")
	)
	flag.Parse()

	srv, err := f2pm.NewMonitorServer(*listen)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "fms: listening on %s\n", srv.Addr())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	if *duration > 0 {
		select {
		case <-stop:
		case <-time.After(*duration):
		}
	} else {
		<-stop
	}
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "fms: close:", err)
	}

	for _, id := range srv.Clients() {
		h, ok := srv.History(id)
		if !ok {
			continue
		}
		path := filepath.Join(*outdir, fmt.Sprintf("history-%s.csv", id))
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fms:", err)
			continue
		}
		if err := f2pm.WriteHistoryCSV(f, h); err != nil {
			fmt.Fprintln(os.Stderr, "fms:", err)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "fms: wrote %s (%d runs, %d datapoints)\n",
			path, len(h.Runs), h.TotalDatapoints())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fms:", err)
	os.Exit(1)
}
