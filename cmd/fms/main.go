// Command fms runs the Feature Monitor Server (paper §III-E): it accepts
// FMC connections over TCP, assembles each client's datapoint stream into
// a data history, and writes one CSV per client on shutdown
// (SIGINT/SIGTERM) or after -duration.
//
// With -serve-model, the FMS also serves predictions: every received
// datapoint feeds the sender's session in a prediction service, RTTF
// estimates stream to stdout, and predictions below -alert-below are
// flagged — the paper's deployment loop (monitor → aggregate → predict
// → act) in one process.
//
// With -registry, the served model comes from a remote model registry
// (cmd/fmr) instead of a local file: the service polls with conditional
// GETs on the -refresh ticker, persists the last-good envelope to
// -model-cache, heartbeats its health to the registry, and — when the
// registry is unreachable — keeps serving the last-good model, flagged
// stale, instead of dropping predictions.
//
// With -supervise, an autonomic overload supervisor watches the
// serving queue: sustained depth past -overload-high tightens the shed
// policy to the -shed-floor priority floor, a drained queue relaxes it
// back, and every decision — including suppressed ones — is logged to
// stderr.
//
// With -placement load, sessions route through a load-tracked placer
// instead of the default stateless hash: per-shard window rates are
// tracked, and when the hottest shard sustains more than -skew-trigger
// times the mean rate the supervisor (requires -supervise) fires the
// rebalance actuator, migrating the hottest movable sessions onto the
// coldest shards with exact window accounting.
//
// Usage:
//
//	fms -listen :7070 -outdir histories/
//	fms -listen :7070 -serve-model best.model -alert-below 60
//	fms -listen :7070 -registry http://10.0.0.9:7071 -model-cache last.model
//	fms -listen :7070 -serve-model best.model -supervise -overload-high 64
//	fms -listen :7070 -serve-model best.model -supervise -placement load -skew-trigger 1.5
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	f2pm "repro"
)

func main() {
	var (
		listen     = flag.String("listen", "127.0.0.1:7070", "TCP listen address")
		outdir     = flag.String("outdir", ".", "directory for per-client history CSVs")
		duration   = flag.Duration("duration", 0, "stop after this long (0 = until SIGINT/SIGTERM)")
		servePath  = flag.String("serve-model", "", "serve live RTTF predictions with this model file")
		alertBelow = flag.Float64("alert-below", 0, "flag predictions below this many seconds (0 disables)")
		window     = flag.Float64("window", 30, "aggregation window for models saved without metadata")
		regURL     = flag.String("registry", "", "serve predictions with models pulled from this registry URL (cmd/fmr)")
		refresh    = flag.Duration("refresh", 10*time.Second, "registry poll interval (with -registry)")
		cacheFile  = flag.String("model-cache", "", "persist the last-good registry envelope here (survives restarts)")
		node       = flag.String("node", "", "node id reported in registry heartbeats (default hostname)")

		supervise     = flag.Bool("supervise", false, "run the autonomic overload supervisor over the serving queue (with -serve-model or -registry)")
		superviseTick = flag.Duration("supervise-every", 5*time.Second, "supervisor sampling interval (with -supervise)")
		overloadHigh  = flag.Float64("overload-high", 48, "queue depth that arms the overload shed tightening (with -supervise)")
		shedFloor     = flag.Int("shed-floor", 1, "priority floor installed while overloaded: windows below it are shed (with -supervise)")

		placement     = flag.String("placement", "hash", "session placement policy: hash (stateless FNV) or load (load-tracked, migratable)")
		skewWatermark = flag.Float64("skew-watermark", 1.5, "shard skew (max/mean window rate) past which the load placer plans migrations (with -placement load)")
		skewTrigger   = flag.Float64("skew-trigger", 1.8, "sustained shard skew that makes the supervisor fire a rebalance (with -supervise -placement load)")
	)
	flag.Parse()
	if *servePath != "" && *regURL != "" {
		fatal(fmt.Errorf("-serve-model and -registry are mutually exclusive"))
	}
	if *supervise && *servePath == "" && *regURL == "" {
		fatal(fmt.Errorf("-supervise needs a prediction service (-serve-model or -registry)"))
	}
	if *placement != "hash" && *placement != "load" {
		fatal(fmt.Errorf("-placement must be hash or load, got %q", *placement))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *duration)
		defer cancel()
	}

	var (
		svc  *f2pm.PredictionService
		opts []f2pm.MonitorServerOption
	)
	opts = append(opts, f2pm.WithMonitorContext(ctx))
	serveOpts := []f2pm.ServeOption{
		f2pm.WithEstimateFunc(func(e f2pm.Estimate) {
			fmt.Printf("client=%s t=%.1fs predicted_rttf=%.1fs model=%s/v%d\n",
				e.SessionID, e.Tgen, e.RTTF, e.ModelName, e.ModelVersion)
		}),
		f2pm.WithAlertFunc(*alertBelow, func(a f2pm.Alert) {
			fmt.Fprintf(os.Stderr, "fms: ALERT client=%s RTTF %.1fs below %.1fs\n",
				a.SessionID, a.RTTF, a.Threshold)
		}),
	}
	if *placement == "load" {
		serveOpts = append(serveOpts, f2pm.WithPlacement(
			f2pm.NewLoadPlacer(f2pm.LoadPlacerConfig{SkewWatermark: *skewWatermark})))
	}
	switch {
	case *servePath != "":
		mf, err := os.Open(*servePath)
		if err != nil {
			fatal(err)
		}
		dep, err := f2pm.LoadDeployment(mf)
		mf.Close()
		if err != nil {
			fatal(err)
		}
		if dep.Aggregation.Validate() != nil {
			cfg := f2pm.DefaultAggregationConfig()
			cfg.WindowSec = *window
			dep.Aggregation = cfg
		}
		// The service deliberately does NOT share the signal context:
		// it must outlive the monitor server during the ordered drain
		// below, or connection handlers still delivering buffered
		// datapoints would race its self-shutdown and lose windows.
		svc, err = f2pm.NewPredictionService(context.Background(),
			append(serveOpts, f2pm.WithDeployment(dep))...)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "fms: serving %s model predictions\n", dep.Name)
		opts = append(opts, f2pm.WithMonitorStream(svc))
	case *regURL != "":
		// Jittered backoff keeps a fleet that lost the same registry
		// from probing it in lockstep.
		src := f2pm.NewHTTPModelSource(*regURL, f2pm.HTTPSourceConfig{
			CacheFile: *cacheFile,
			RNG:       f2pm.NewRandomSource(uint64(time.Now().UnixNano())),
		})
		var err error
		svc, err = f2pm.NewPredictionService(context.Background(),
			append(serveOpts,
				f2pm.WithModelSource(src),
				f2pm.WithRefreshInterval(*refresh))...)
		if err != nil {
			fatal(fmt.Errorf("registry %s: %w", *regURL, err))
		}
		st := src.SourceStatus()
		if st.Stale {
			fmt.Fprintf(os.Stderr, "fms: registry unreachable (%s); serving last-good cached model\n", st.LastError)
		} else {
			fmt.Fprintf(os.Stderr, "fms: serving model from registry %s (etag %s)\n", *regURL, st.ETag)
		}
		opts = append(opts, f2pm.WithMonitorStream(svc))
		go heartbeatLoop(ctx, *regURL, nodeID(*node), src, svc, *refresh)
	}

	var stopSupervisor func()
	if *supervise && svc != nil {
		policies := []f2pm.SupervisorPolicy{&f2pm.OverloadPolicy{
			HighDepth:  *overloadHigh,
			TightDepth: int(*overloadHigh) / 2,
			TightFloor: *shedFloor,
			RelaxDepth: int(*overloadHigh) * 4,
			RelaxFloor: 0,
		}}
		actuators := f2pm.SupervisorActuators{
			Reshard: func(depth, floor int, reason string) error {
				return svc.SetShedPolicy(f2pm.ShedPolicy{MaxQueueDepth: depth, MinPriority: floor})
			},
		}
		if *placement == "load" && *skewTrigger > 1 {
			policies = append(policies, &f2pm.SkewPolicy{High: *skewTrigger})
			actuators.Rebalance = func(reason string) error {
				moved := svc.Rebalance()
				fmt.Fprintf(os.Stderr, "fms: rebalance migrated %d sessions (%s)\n", moved, reason)
				return nil
			}
		}
		sup, err := f2pm.NewSupervisor(f2pm.SupervisorConfig{
			Policies:        policies,
			Actuators:       actuators,
			DefaultCooldown: 4 * *superviseTick,
			OnDecision: func(d f2pm.SupervisorDecision) {
				fmt.Fprintf(os.Stderr, "fms: decision %s\n", d)
			},
		})
		if err != nil {
			fatal(err)
		}
		stopSupervisor = f2pm.SuperviseService(sup, svc, *superviseTick, ctx.Done())
		fmt.Fprintf(os.Stderr, "fms: overload supervisor armed (high watermark %g, floor %d, every %s)\n",
			*overloadHigh, *shedFloor, *superviseTick)
		if actuators.Rebalance != nil {
			fmt.Fprintf(os.Stderr, "fms: placement rebalancer armed (watermark %g, trigger %g)\n",
				*skewWatermark, *skewTrigger)
		}
	}

	srv, err := f2pm.NewMonitorServer(*listen, opts...)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "fms: listening on %s\n", srv.Addr())

	<-ctx.Done()
	// Drain in dependency order: the server stops feeding first, then
	// the service finishes its queued predictions, then the assembled
	// histories (including any unfinished final run) are written out —
	// no datapoint received before shutdown is lost.
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "fms: close:", err)
	}
	if stopSupervisor != nil {
		stopSupervisor()
	}
	if svc != nil {
		svc.Close()
		st := svc.Stats()
		fmt.Fprintf(os.Stderr, "fms: served %d predictions (%d alerts) across %d sessions\n",
			st.Predictions, st.Alerts, st.Sessions)
		if st.Migrations > 0 {
			fmt.Fprintf(os.Stderr, "fms: placement migrated %d sessions across shards\n", st.Migrations)
		}
	}

	for _, id := range srv.Clients() {
		h, ok := srv.History(id)
		if !ok {
			continue
		}
		path := filepath.Join(*outdir, fmt.Sprintf("history-%s.csv", id))
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fms:", err)
			continue
		}
		if err := f2pm.WriteHistoryCSV(f, h); err != nil {
			fmt.Fprintln(os.Stderr, "fms:", err)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "fms: wrote %s (%d runs, %d datapoints)\n",
			path, len(h.Runs), h.TotalDatapoints())
	}
}

// heartbeatLoop reports this node's health to the registry every poll
// interval: which envelope it serves, its counters, and whether it is
// serving stale. Heartbeat failures and the node's own staleness are
// logged once per transition — an operator tailing the log sees when
// the node fell back to its last-good model and when it reconverged
// (with how long it had been serving stale), not a line per poll.
func heartbeatLoop(ctx context.Context, regURL, node string, src *f2pm.HTTPModelSource, svc *f2pm.PredictionService, every time.Duration) {
	client := f2pm.NewRegistryClient(regURL, nil)
	t := time.NewTicker(every)
	defer t.Stop()
	down := false
	stale := false
	var staleAge time.Duration // last observed age: Stats zeroes it once fresh
	for {
		st := svc.Stats()
		switch {
		case st.RegistryStale && !stale:
			fmt.Fprintf(os.Stderr, "fms: registry stale (%s); serving last-good model v%d\n",
				st.RegistryLastError, st.ModelVersion)
		case !st.RegistryStale && stale:
			fmt.Fprintf(os.Stderr, "fms: registry fresh again after ~%s stale; serving model v%d\n",
				(staleAge + every).Round(time.Second), st.ModelVersion)
		}
		stale = st.RegistryStale
		if st.RegistryStale {
			staleAge = st.RegistryStaleAge
		}
		hb := f2pm.RegistryHeartbeat{
			Node:         node,
			ETag:         src.ETag(),
			ModelVersion: st.ModelVersion,
			Sessions:     st.Sessions,
			Predictions:  st.Predictions,
			Stale:        st.RegistryStale,
			StaleAgeSec:  st.RegistryStaleAge.Seconds(),
			LastError:    st.RegistryLastError,
		}
		hbCtx, cancel := context.WithTimeout(ctx, every)
		_, err := client.SendHeartbeat(hbCtx, hb)
		cancel()
		if err != nil && !down {
			fmt.Fprintf(os.Stderr, "fms: heartbeat: %v\n", err)
		}
		down = err != nil
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// nodeID resolves the heartbeat node id: the -node flag, else the
// hostname, else the pid.
func nodeID(flagVal string) string {
	if flagVal != "" {
		return flagVal
	}
	if h, err := os.Hostname(); err == nil && h != "" {
		return h
	}
	return fmt.Sprintf("fms-%d", os.Getpid())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fms:", err)
	os.Exit(1)
}
