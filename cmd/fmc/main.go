// Command fmc runs the Feature Monitor Client (paper §III-E): it samples
// the local system's features every -interval (the paper uses ~1.5 s)
// through /proc and ships datapoints to an FMS over TCP. When the
// failure condition fires, it ships a fail event; restarting the
// monitored application is left to the operator or an external agent.
//
// SIGINT/SIGTERM stop the loop cleanly: the in-flight sample is shipped
// (every datapoint is flushed to the socket as soon as it is taken), the
// goodbye message is sent, and the connection closes.
//
// Dial failures and mid-stream disconnects no longer abandon the run:
// the client reconnects with capped exponential backoff plus jitter
// (-retry-base/-retry-max/-retry-attempts) and resumes the stream —
// the FMS keeps each client's open run across connections, so the
// window survives with at most a sampling gap for the outage. Set
// -retry-attempts to bound the reconnect budget (0 retries forever).
//
// Usage:
//
//	fmc -server 10.0.0.2:7070 -id web-vm-1 -interval 1.5s
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	f2pm "repro"
)

func main() {
	var (
		server    = flag.String("server", "127.0.0.1:7070", "FMS address")
		id        = flag.String("id", hostnameOr("fmc"), "client identifier")
		interval  = flag.Duration("interval", 1500*time.Millisecond, "sampling interval")
		procRoot  = flag.String("proc", "/proc", "procfs mount point")
		memFrac   = flag.Float64("mem-frac", 0.02, "failure condition: free-memory fraction")
		swapFrac  = flag.Float64("swap-frac", 0.02, "failure condition: free-swap fraction")
		retryBase = flag.Duration("retry-base", 250*time.Millisecond, "reconnect backoff: initial delay")
		retryMax  = flag.Duration("retry-max", 15*time.Second, "reconnect backoff: delay cap")
		retryTry  = flag.Int("retry-attempts", 0, "reconnect backoff: max consecutive attempts (0 = unlimited)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	backoff := f2pm.RetryBackoff{Base: *retryBase, Max: *retryMax, MaxAttempts: *retryTry}
	jitterRNG := f2pm.NewRandomSource(uint64(os.Getpid())<<16 ^ uint64(time.Now().UnixNano()))

	// The initial dial retries too: an fmc booting before its FMS (or
	// during a server deploy) connects when the server appears.
	cli, err := f2pm.DialMonitorRetry(ctx, *server, *id, backoff, jitterRNG)
	if err != nil {
		fatal(err)
	}
	defer cli.Close()

	coll := &f2pm.Collector{
		Client:    cli,
		Source:    f2pm.NewProcSource(*procRoot),
		Interval:  *interval,
		Condition: f2pm.MemoryExhaustion(*memFrac, *swapFrac),
		OnFail: func(d *f2pm.Datapoint) {
			fmt.Fprintf(os.Stderr, "fmc: failure condition met at uptime %.1fs\n", d.Tgen)
		},
		Redial: func(ctx context.Context) (*f2pm.MonitorClient, error) {
			return f2pm.DialMonitorContext(ctx, *server, *id)
		},
		Retry:    backoff,
		RetryRNG: jitterRNG,
		OnReconnect: func(attempt int, err error) {
			if err != nil {
				fmt.Fprintf(os.Stderr, "fmc: reconnect attempt %d failed: %v\n", attempt, err)
				return
			}
			fmt.Fprintf(os.Stderr, "fmc: reconnected to %s after %d attempt(s), resuming run\n", *server, attempt)
		},
	}
	if err := coll.Start(ctx); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "fmc: sampling every %v, shipping to %s as %q\n", *interval, *server, *id)

	<-ctx.Done()
	// Stop waits for the loop to finish its current iteration, so the
	// last sampled datapoint is already on the wire when we close.
	coll.Stop()
	fmt.Fprintln(os.Stderr, "fmc: stopped")
}

func hostnameOr(fallback string) string {
	if h, err := os.Hostname(); err == nil && h != "" {
		return h
	}
	return fallback
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fmc:", err)
	os.Exit(1)
}
