// Command experiments regenerates every table and figure of the paper's
// evaluation (§IV) on the simulated test-bed, plus the ablations in
// DESIGN.md.
//
// Usage:
//
//	experiments -run all            # everything (a few minutes)
//	experiments -run fig4,table2    # selected artifacts
//	experiments -quick              # reduced scale (CI-sized)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

var artifacts = []string{"fig3", "fig4", "table1", "table2", "table3", "table4", "fig5", "ablations"}

func main() {
	var (
		runList = flag.String("run", "all", "comma-separated artifacts: "+strings.Join(artifacts, ","))
		quick   = flag.Bool("quick", false, "reduced scale (small VM, no SVMs)")
		seed    = flag.Uint64("seed", 0, "override campaign seed (0 = config default)")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	want := map[string]bool{}
	if *runList == "all" {
		for _, a := range artifacts {
			want[a] = true
		}
	} else {
		for _, a := range strings.Split(*runList, ",") {
			a = strings.TrimSpace(a)
			valid := false
			for _, known := range artifacts {
				if a == known {
					valid = true
					break
				}
			}
			if !valid {
				fatal(fmt.Errorf("unknown artifact %q (want one of %s)", a, strings.Join(artifacts, ",")))
			}
			want[a] = true
		}
	}

	t0 := time.Now()
	fmt.Fprintf(os.Stderr, "experiments: building campaign (seed=%d, %.0f virtual seconds)...\n",
		cfg.Seed, cfg.TotalVirtualSec)
	art, err := experiments.Build(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "experiments: campaign + pipeline ready in %v (%d failed runs, %d rows)\n\n",
		time.Since(t0).Round(time.Millisecond), len(art.Data.History.FailedRuns()), art.Dataset.NumRows())

	if want["fig3"] {
		f3, err := experiments.Fig3(art.Data, cfg.WindowSec)
		if err != nil {
			fatal(err)
		}
		fmt.Println(f3.Format())
	}
	if want["fig4"] {
		f4, err := experiments.Fig4(art.Dataset)
		if err != nil {
			fatal(err)
		}
		fmt.Println(f4.Format())
	}
	if want["table1"] {
		t1, err := experiments.TableI(art.Dataset, cfg.SelectionLambda)
		if err != nil {
			fatal(err)
		}
		fmt.Println(t1.Format())
	}
	tabs := experiments.Tables(art.Report)
	if want["table2"] {
		fmt.Println(tabs.FormatSMAE())
	}
	if want["table3"] {
		fmt.Println(tabs.FormatTrainingTime())
	}
	if want["table4"] {
		fmt.Println(tabs.FormatValidationTime())
	}
	if want["fig5"] {
		f5, err := experiments.Fig5(art.Report, cfg.SelectionLambda)
		if err != nil {
			fatal(err)
		}
		fmt.Println(f5.Format())
	}
	if want["ablations"] {
		wpts, err := experiments.AblationWindow(cfg, &art.Data.History, nil)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.FormatWindowAblation(wpts))
		spts, err := experiments.AblationSlopes(cfg, &art.Data.History)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.FormatSlopesAblation(spts))
		tpts, err := experiments.AblationThreshold(art.Report, nil)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.FormatThresholdAblation(tpts, []string{"Linear Regression", "M5P", "REP Tree"}))
		rpts, err := experiments.AblationRuns(cfg, &art.Data.History, nil)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.FormatRunsAblation(rpts))
		ipts, err := experiments.AblationInterval(cfg, nil)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.FormatIntervalAblation(ipts))
	}
	fmt.Fprintf(os.Stderr, "experiments: done in %v\n", time.Since(t0).Round(time.Millisecond))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
