// Command tpcwsim runs the simulated TPC-W test-bed campaign (paper §IV)
// and writes the collected data history as CSV, plus a run summary.
//
// Usage:
//
//	tpcwsim -seed 2015 -duration 100000 -out history.csv
package main

import (
	"flag"
	"fmt"
	"os"

	f2pm "repro"
)

func main() {
	var (
		seed     = flag.Uint64("seed", 2015, "campaign seed (deterministic)")
		duration = flag.Float64("duration", 100_000, "virtual seconds to simulate")
		out      = flag.String("out", "history.csv", "output CSV path ('-' for stdout)")
		browsers = flag.Int("browsers", 0, "override emulated browser count (0 = default)")
		memMB    = flag.Float64("mem-mb", 0, "override VM memory in MB (0 = default 2048)")
		swapMB   = flag.Float64("swap-mb", 0, "override VM swap in MB (0 = default 1024)")
		quiet    = flag.Bool("q", false, "suppress the run summary")
	)
	flag.Parse()

	cfg := f2pm.DefaultTestbedConfig(*seed)
	if *browsers > 0 {
		cfg.NumBrowsers = *browsers
	}
	if *memMB > 0 {
		// Scale the VM's baseline footprint with its size, so a small
		// -mem-mb stays bootable and a large one stays realistic.
		factor := *memMB * 1024 / cfg.Machine.TotalMemKB
		cfg.Machine.TotalMemKB *= factor
		cfg.Machine.BaseUsedKB *= factor
		cfg.Machine.BaseSharedKB *= factor
		cfg.Machine.BaseBuffersKB *= factor
		cfg.Machine.MinCacheKB *= factor
	}
	if *swapMB > 0 {
		cfg.Machine.TotalSwapKB = *swapMB * 1024
	}

	tb, err := f2pm.NewTestbed(cfg)
	if err != nil {
		fatal(err)
	}
	res, err := tb.Run(*duration)
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := f2pm.WriteHistoryCSV(w, &res.History); err != nil {
		fatal(err)
	}

	if !*quiet {
		failed := res.History.FailedRuns()
		fmt.Fprintf(os.Stderr, "simulated %.0f virtual seconds: %d runs (%d failed), %d datapoints, %d RT probes\n",
			*duration, len(res.History.Runs), len(failed), res.History.TotalDatapoints(), len(res.RTs))
		for i, ri := range res.Runs {
			status := "truncated"
			if ri.Failed {
				status = "crashed"
			} else if ri.Rejuvenated {
				status = "rejuvenated"
			}
			fmt.Fprintf(os.Stderr, "  run %3d: %9.1fs  leakProb=%.2f threadProb=%.2f  served=%d  %s\n",
				i, ri.Duration, ri.LeakProb, ri.ThreadProb, ri.Stats.Completed, status)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tpcwsim:", err)
	os.Exit(1)
}
