package f2pm

import (
	"io"

	"repro/internal/ml/modelio"
	"repro/internal/monitor"
)

// Feature monitoring utilities (paper §III-E): the Feature Monitor
// Client/Server pair over TCP, with pluggable feature sources.
type (
	// MonitorServer is the FMS: it assembles per-client data histories
	// from datapoint/fail streams.
	MonitorServer = monitor.Server
	// MonitorClient is the FMC: it ships datapoints and fail events.
	MonitorClient = monitor.Client
	// Collector drives a real-time FMC sampling loop.
	Collector = monitor.Collector
	// FeatureSource produces feature snapshots.
	FeatureSource = monitor.Source
	// FeatureSourceFunc adapts a function to FeatureSource.
	FeatureSourceFunc = monitor.SourceFunc
	// ProcSource samples a live Linux host through /proc.
	ProcSource = monitor.ProcSource
)

// NewMonitorServer starts an FMS on addr (use "host:0" for an ephemeral
// port; the chosen address is available via Addr).
func NewMonitorServer(addr string) (*MonitorServer, error) { return monitor.NewServer(addr) }

// DialMonitor connects an FMC to the FMS at addr.
func DialMonitor(addr, clientID string) (*MonitorClient, error) {
	return monitor.Dial(addr, clientID)
}

// NewProcSource returns a /proc-backed feature source (root "" means
// /proc).
func NewProcSource(root string) *ProcSource { return monitor.NewProcSource(root) }

// SaveModel persists a trained model (any of the six methods) as a
// versioned JSON envelope, for deployment without retraining.
func SaveModel(w io.Writer, m Regressor) error { return modelio.Save(w, m) }

// LoadModel restores a model written by SaveModel; the result predicts
// immediately, no Fit needed.
func LoadModel(r io.Reader) (Regressor, error) { return modelio.Load(r) }
