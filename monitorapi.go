package f2pm

import (
	"context"
	"io"

	"repro/internal/ml/modelio"
	"repro/internal/monitor"
	"repro/internal/randx"
)

// Feature monitoring utilities (paper §III-E): the Feature Monitor
// Client/Server pair over TCP, with pluggable feature sources.
type (
	// MonitorServer is the FMS: it assembles per-client data histories
	// from datapoint/fail streams.
	MonitorServer = monitor.Server
	// MonitorServerOption configures an FMS.
	MonitorServerOption = monitor.ServerOption
	// MonitorStreamHandler receives the live FMC event stream (a
	// PredictionService implements it).
	MonitorStreamHandler = monitor.StreamHandler
	// MonitorClient is the FMC: it ships datapoints and fail events.
	MonitorClient = monitor.Client
	// Collector drives a real-time FMC sampling loop.
	Collector = monitor.Collector
	// FeatureSource produces feature snapshots.
	FeatureSource = monitor.Source
	// FeatureSourceFunc adapts a function to FeatureSource.
	FeatureSourceFunc = monitor.SourceFunc
	// ProcSource samples a live Linux host through /proc.
	ProcSource = monitor.ProcSource
	// RetryBackoff is a capped exponential backoff policy with jitter,
	// used by DialMonitorRetry and the Collector's reconnect path (the
	// Collector.Retry field). The zero value means the defaults: 250 ms
	// base, 15 s cap, factor 2, ±20 % jitter, unlimited attempts.
	RetryBackoff = monitor.Backoff
	// RandomSource is a seeded deterministic random stream (xoshiro256**)
	// — the same generator the simulation layers use — for reproducible
	// retry jitter and fleet simulation.
	RandomSource = randx.Source
)

// NewRandomSource returns a deterministic random stream seeded with
// seed: the same seed always yields the same sequence.
func NewRandomSource(seed uint64) *RandomSource { return randx.New(seed) }

// NewMonitorServer starts an FMS on addr (use "host:0" for an ephemeral
// port; the chosen address is available via Addr). Options attach a
// live stream handler (WithMonitorStream) and tie the server lifetime
// to a context (WithMonitorContext).
func NewMonitorServer(addr string, opts ...MonitorServerOption) (*MonitorServer, error) {
	return monitor.NewServer(addr, opts...)
}

// WithMonitorStream feeds every accepted datapoint and fail event to h
// as the server assembles it — pass a *PredictionService to close the
// monitor → aggregate → predict → act loop in one process.
func WithMonitorStream(h MonitorStreamHandler) MonitorServerOption { return monitor.WithStream(h) }

// WithMonitorContext closes the server when ctx is cancelled.
func WithMonitorContext(ctx context.Context) MonitorServerOption {
	return monitor.WithServerContext(ctx)
}

// DialMonitor connects an FMC to the FMS at addr.
func DialMonitor(addr, clientID string) (*MonitorClient, error) {
	return monitor.Dial(addr, clientID)
}

// DialMonitorContext is DialMonitor under a caller-supplied context.
func DialMonitorContext(ctx context.Context, addr, clientID string) (*MonitorClient, error) {
	return monitor.DialContext(ctx, addr, clientID)
}

// DialMonitorRetry dials the FMS with capped exponential backoff: each
// failed attempt waits the policy's (jittered) delay and retries until
// the dial succeeds, ctx is cancelled, or MaxAttempts failures — so an
// FMC that boots before its FMS connects when the server appears
// instead of dying. Pass a seeded RandomSource for reproducible jitter,
// or nil for none.
func DialMonitorRetry(ctx context.Context, addr, clientID string, b RetryBackoff, rng *RandomSource) (*MonitorClient, error) {
	return monitor.DialRetryContext(ctx, addr, clientID, b, rng)
}

// NewProcSource returns a /proc-backed feature source (root "" means
// /proc).
func NewProcSource(root string) *ProcSource { return monitor.NewProcSource(root) }

// SaveModel persists a trained model (any of the six methods) as a
// versioned JSON envelope, for deployment without retraining. To carry
// the feature subset and aggregation config along, use SaveDeployment.
func SaveModel(w io.Writer, m Regressor) error { return modelio.Save(w, m) }

// LoadModel restores a model written by SaveModel; the result predicts
// immediately, no Fit needed.
func LoadModel(r io.Reader) (Regressor, error) { return modelio.Load(r) }
