// Package f2pm is the public API of this reproduction of "A Machine
// Learning-based Framework for Building Application Failure Prediction
// Models" (Pellegrini, Di Sanzo, Avresky — IPDPS Workshops 2015).
//
// F2PM builds models that predict the Remaining Time To Failure (RTTF)
// of an application accumulating software anomalies (memory leaks,
// unterminated threads), using only system-level features sampled by a
// thin monitor — no application instrumentation.
//
// The typical flow mirrors the paper's Figure 1:
//
//	history := ...                     // collect via the FMC/FMS monitor,
//	                                   // load from CSV, or simulate (Testbed)
//	pipe, _ := f2pm.NewPipeline(f2pm.DefaultConfig())
//	report, _ := pipe.Run(history)     // aggregate → select → train → validate
//	best := report.Best()              // lowest S-MAE model
//	rttf := best.Model.Predict(features)
//
// # Incremental retraining
//
// The paper's collection loop — "further system runs can be executed
// to collect new data ... and to produce new models" — is served by
// Pipeline.Update: after Run, feed the pipeline the same history
// extended with newly completed failure runs (e.g. accumulated from
// the live monitor feeding a LiveAggregator on the deployment side)
// and every model is brought up to date at a cost scaling with the
// new data, not the whole history:
//
//	report, _ = pipe.Update(history)   // history = old runs + new runs
//
// Under the hood, only the new runs are aggregated; the LS-SVM
// extends its kernel system with a bordered Cholesky factorization
// (internal/mat's Cholesky.Extend over a grown kernel row store), the
// Lasso models fold the new rows into their retained covariance state
// with rank-1 updates, the regularization path re-solves the whole λ
// grid from one shared covariance (lasso FitPath, behind LassoPath),
// and the remaining learners refit on the combined set. Large buffers
// are recycled through an internal pool, so steady-state retrains and
// single-sample Predict calls stop paying allocation and page-zeroing
// costs.
//
// # Sliding-window retraining
//
// Grow-only incremental retraining still accumulates the whole history
// — a problem for deployments that retrain continuously for weeks.
// Config.Window bounds it: under a WindowPolicy (max runs and/or max
// monitored age), Update also *evicts* the oldest runs from everything
// the pipeline retains, at a cost scaling with the rows moved, not the
// history:
//
//	cfg := f2pm.DefaultConfig()
//	cfg.Window = f2pm.WindowPolicy{MaxRuns: 200}   // or MaxAgeSec
//	pipe, _ := f2pm.NewPipeline(cfg)
//	report, _ = pipe.Update(history)               // append AND evict
//
// Under the hood the LS-SVM downdates its Cholesky factor in place (a
// blocked Householder sweep absorbs the evicted columns' outer
// product, with a jittered re-factorization fallback for
// ill-conditioned windows), its flat kernel row store advances a ring
// head, the Lasso covariance subtracts the departing rows with rank-1
// downdates, and the feature-selection path re-solves from the same
// windowed covariance. Models that cannot slide refit on the surviving
// window. Parity is exact to numerical tolerance: a slide matches a
// from-scratch fit on the surviving window, while steady-state slides
// run entirely inside pre-reserved buffer headroom — flat memory, no
// growth, and a ~3-4x speedup over the rebuild at n=1000 (see
// BENCH_*_pr4.json: SlideWindow vs SlideScratch).
//
// # Serving
//
// The deployment side — the paper's always-on loop where a monitor
// streams system features and the framework continuously emits RTTF
// estimates — is the serving layer: a PredictionService owns a
// versioned model registry and any number of per-client sessions, each
// running a LiveAggregator; completed windows across all sessions are
// predicted in batches, and threshold-crossing alerts drive the
// proactive action:
//
//	dep, _ := f2pm.DeploymentFromReport(report)   // best model + feature
//	                                              // subset + agg config
//	svc, _ := f2pm.NewPredictionService(ctx,
//	    f2pm.WithDeployment(dep),
//	    f2pm.WithAlertFunc(60, func(a f2pm.Alert) { /* rejuvenate */ }))
//	srv, _ := f2pm.NewMonitorServer(addr, f2pm.WithMonitorStream(svc))
//
// FMS-received datapoints now feed sessions directly (auto-created per
// client id): monitor → aggregate → predict → act in one process. As
// retraining produces new models, svc.Deploy(dep) hot-swaps the served
// model atomically — in-flight batches finish with the model they
// snapshotted, and everything enqueued after Deploy returns uses the
// new one, including Lasso-selected models whose feature projection is
// rebuilt from the deployment. WithRefreshInterval wires the swap to a
// ModelSource ticker so retrained models go live hands-off, and
// WithSessionTTL bounds the serving tier's memory the same way the
// WindowPolicy bounds training: idle sessions are evicted by a
// background sweep (final snapshots via WithSessionEvictFunc), while
// Stats exposes queue depth, batch latency, and the
// eviction/refresh counters for backpressure monitoring.
// SaveDeployment/LoadDeployment persist a deployment with its feature
// subset and aggregation config, so a model file alone is enough to
// serve correctly.
//
// The serving hot path is sharded for fleet-scale client counts
// (WithServeShards, default GOMAXPROCS): sessions hash onto shards,
// each with its own pending queue, dispatcher goroutine, and slice of
// the session map, so enqueue, prediction, and the idle-TTL sweep
// contend per shard instead of on one service lock — a sweep over 10⁵
// sessions never stalls the other shards' predictions, and the
// hot-swap freshness guarantee holds shard by shard. Under sustained
// overload, WithShedPolicy turns unbounded queue growth into bounded,
// priority-ordered loss: past a per-shard queue depth, completed
// windows of sessions below the priority floor (WithSessionPriority)
// are dropped with exact accounting (ErrWindowShed,
// ServeStats.ShedWindows — attributed per priority in
// ServeStats.ShedByPriority) while higher-priority sessions keep their
// zero-drop guarantee.
//
// How sessions map onto shards is a pluggable placement policy
// (WithPlacement). The default HashPlacer routes by FNV hash —
// stateless and bitwise-identical to the pre-placement service. A
// LoadPlacer (NewLoadPlacer) instead tracks per-shard window rates
// with an EWMA and, when the hottest shard's rate exceeds its
// SkewWatermark multiple of the mean, plans migrations of the hottest
// movable sessions onto the coldest shards; PredictionService.Rebalance
// executes the plan under both shards' locks with the same exactness
// invariants as coalescing — a moved session never strands a queued or
// in-flight window, and predicted+shed still exactly partition
// accepted. ServeStats.ShardLoads exposes the per-shard snapshots and
// ServeStats.Migrations counts moves; the autonomic SkewPolicy closes
// the loop by proposing ActionRebalance when the observed skew
// sustains past its trigger.
//
// # Remote registry
//
// One process caps out at one machine; the remote model registry is
// the control plane that lets N serving nodes share one trainer. A
// ModelRegistry (daemonized as cmd/fmr) serves modelio deployment
// envelopes over HTTP with strong ETags — quoted SHA-256 of the
// envelope bytes, so a tag changes iff the bytes change — and serving
// nodes poll it with conditional GETs through an HTTPModelSource on
// the refresh ticker: an unchanged model costs one 304 round-trip and
// the refresh stays a version-free no-op. The trainer publishes with
// PublishDeployment (or cmd/f2pm -publish); garbage envelopes are
// rejected with the load error and the current model keeps serving:
//
//	reg := f2pm.NewModelRegistry()        // or: fmr -listen :7071 -persist reg.model
//	go http.ListenAndServe(":7071", reg)
//	_, _ = f2pm.PublishDeployment(ctx, "http://127.0.0.1:7071", dep)
//
//	src := f2pm.NewHTTPModelSource("http://127.0.0.1:7071",
//	    f2pm.HTTPSourceConfig{CacheFile: "/var/lib/fms/last-good.model"})
//	svc, _ := f2pm.NewPredictionService(ctx,
//	    f2pm.WithModelSource(src), f2pm.WithRefreshInterval(10*time.Second))
//
// The registry is a convergence point, never a single point of
// failure: the source fails over stale-while-revalidate. When a poll
// fails — registry down, timeout, garbage response — the node keeps
// serving its last-good deployment (persisted to CacheFile across
// restarts, so even a cold boot during an outage serves immediately),
// a circuit breaker probes the dead registry on capped backoff
// instead of hammering it every tick, and the outage is surfaced
// rather than swallowed: ServeStats.RegistryStale/RegistryStaleAge/
// RegistryLastError, mirrored into node heartbeats so the registry's
// /v1/health view shows exactly which nodes are coasting and which
// have converged (RegistryHealth, per-node liveness and ETag match).
// After recovery the node converges to everything published during
// the outage within one poll interval. cmd/fms wires all of it up
// (-registry, -model-cache, -node); docs/registry-protocol.md is the
// wire contract; the failover path is proven by a race-enabled HTTP
// e2e test and the deterministic registry-outage fleetsim scenario.
//
// # Fleet simulation & chaos testing
//
// The whole train-serve loop is exercised end to end by the fleet
// chaos harness (cmd/fleetsim): a YAML scenario describes a fleet of
// simulated monitored applications — each a memory-leak ramp with the
// paper's TPC-W failure shape, expanded from weighted templates onto a
// spike or linear arrival ramp with seeded cold-start jitter — running
// against a real PredictionService. A seeded chaos engine injects
// crash-restarts, connection flaps, slow consumers, stale-model
// storms, and leak bursts at scripted virtual times, and in-scenario
// assertions check the system's invariants while the faults land:
// never-crashed sessions lose no completed windows, every shed window
// is attributed to a priority below the shed floor, retrains and
// redraws happen, predictions and alerts flow.
//
// Runs are deterministic by construction — a virtual clock, manual
// dispatch (no background goroutines), and a single seeded random
// source forked per subsystem — so the same scenario and seed always
// produce a byte-identical event log; `fleetsim run -replay-check`
// verifies it, and CI runs the committed smoke scenario race-enabled
// on every push. See examples/fleetsim for a walkthrough and
// examples/fleetsim/scenarios for the committed scenarios. The same
// fault-injection hooks the harness uses are part of the serving API:
// WithServeClock substitutes the service's time source,
// WithManualDispatch turns background dispatch off in favor of
// explicit Flush/SweepIdleNow calls, WithShedFunc observes every shed
// decision, and WithBatchFailpoint intercepts batches before
// prediction.
//
// # Autonomic operation
//
// The loop closes itself: a Supervisor (NewSupervisor) watches
// serving-side signals — feature drift from incremental updates,
// prediction error graded at each observed failure, serving queue
// depth, registry staleness — and decides through pluggable policies
// when to act: retrain, slide the training window, publish, redeploy
// locally, or reshard the load-shedding floor. The three shipped
// policy families cover the classic shapes (DriftPolicy: threshold;
// PredictionErrorPolicy: EWMA with hysteresis; OverloadPolicy:
// watermarks with rate-of-change), and the supervisor itself applies
// per-action cooldowns, defers publishes while the registry is stale
// (falling back to a local redeploy past a bound), and executes
// through caller-wired actuator functions.
//
// The supervisor owns no goroutines and no clock — signals carry
// timestamps, the caller ticks it (SuperviseService is the wall-clock
// convenience for daemons; cmd/fms -supervise uses it), and every
// proposal becomes a sequence-numbered Decision in a structured log,
// including the suppressed and deferred ones. Determinism is the
// point: the fleetsim harness drives a fully wired supervisor —
// retrains with 1e-8 warm-start parity checks, registry publishes,
// shed-policy reshards — on its virtual clock and replays the whole
// decision stream byte-for-byte (the supervisor-loop scenario runs
// with no manual retrain cadence at all). See docs/autonomic.md for
// the signal/policy/outcome contract and examples/autonomic for a
// scripted walkthrough.
//
// On the monitor side, DialMonitorRetry dials the FMS with capped
// exponential backoff and seeded jitter, and a Collector configured
// with Redial/Retry survives connection loss by reconnecting and
// resuming its stream in place — the server keys open runs by client
// id, so a resumed stream continues the same run.
//
// Long-running calls accept a context (RunContext, UpdateContext,
// DialMonitorContext, WithMonitorContext, NewPredictionService);
// cancellation stops sessions, the monitor server, and in-flight
// pipeline calls promptly. Failures surface through the Err* sentinel
// taxonomy (see errors.go) for errors.Is dispatch.
//
// Subsystems re-exported here:
//
//   - data model and CSV codec (History, Run, Datapoint)
//   - datapoint aggregation and derived metrics, batch and live
//   - Lasso feature selection (regularization paths)
//   - the six learning methods (linear regression, M5P, REP-Tree,
//     Lasso-as-predictor, ε-SVR, LS-SVM)
//   - the evaluation metrics (MAE, RAE, MaxAE, S-MAE, timings)
//   - the FMC/FMS TCP monitor with /proc and simulator feature sources
//   - the simulated TPC-W test-bed used by the paper reproduction
//
// Import path note: the module is named "repro"; import it as
//
//	import f2pm "repro"
package f2pm

import (
	"io"

	"repro/internal/aggregate"
	"repro/internal/core"
	"repro/internal/featsel"
	"repro/internal/metrics"
	"repro/internal/ml"
	"repro/internal/rtest"
	"repro/internal/trace"
)

// Data model (paper §III-A).
type (
	// Datapoint is one periodic measurement of all system features.
	Datapoint = trace.Datapoint
	// Run is one execution of the monitored system up to its fail event.
	Run = trace.Run
	// History is the full data history across runs.
	History = trace.History
	// FeatureIndex identifies a raw system feature.
	FeatureIndex = trace.FeatureIndex
	// FailCondition decides when the system counts as failed.
	FailCondition = trace.FailCondition
)

// Raw system features (paper §III-A order).
const (
	NumThreads = trace.NumThreads
	MemUsed    = trace.MemUsed
	MemFree    = trace.MemFree
	MemShared  = trace.MemShared
	MemBuffers = trace.MemBuffers
	MemCached  = trace.MemCached
	SwapUsed   = trace.SwapUsed
	SwapFree   = trace.SwapFree
	CPUUser    = trace.CPUUser
	CPUNice    = trace.CPUNice
	CPUSystem  = trace.CPUSystem
	CPUIOWait  = trace.CPUIOWait
	CPUSteal   = trace.CPUSteal
	CPUIdle    = trace.CPUIdle

	// NumFeatures is the raw feature count per datapoint.
	NumFeatures = trace.NumFeatures
)

// FeatureNames returns the canonical feature names in order.
func FeatureNames() []string { return trace.FeatureNames() }

// MemoryExhaustion returns the paper's default failure condition: free
// memory and free swap both below the given fractions of their totals.
func MemoryExhaustion(memFrac, swapFrac float64) FailCondition {
	return trace.MemoryExhaustion(memFrac, swapFrac)
}

// ThresholdCondition builds a single-feature threshold failure condition
// (dir >= 0 fires on >=, dir < 0 fires on <=).
func ThresholdCondition(f FeatureIndex, threshold float64, dir int) FailCondition {
	return trace.ThresholdCondition(f, threshold, dir)
}

// ReadHistoryCSV loads a data history written by WriteHistoryCSV.
func ReadHistoryCSV(r io.Reader) (*History, error) { return trace.ReadCSV(r) }

// WriteHistoryCSV persists a data history as CSV.
func WriteHistoryCSV(w io.Writer, h *History) error { return trace.WriteCSV(w, h) }

// Aggregation (paper §III-B).
type (
	// AggregationConfig controls windowing and derived metrics.
	AggregationConfig = aggregate.Config
	// Dataset is the aggregated, RTTF-labeled dataset.
	Dataset = aggregate.Dataset
	// LiveAggregator builds aggregated rows from a live datapoint stream.
	LiveAggregator = aggregate.LiveAggregator
)

// Aggregate runs datapoint aggregation and derived-metric computation.
func Aggregate(h *History, cfg AggregationConfig) (*Dataset, error) {
	return aggregate.Aggregate(h, cfg)
}

// NewLiveAggregator returns a streaming aggregator with the same row
// layout as Aggregate, for live RTTF prediction.
func NewLiveAggregator(cfg AggregationConfig) (*LiveAggregator, error) {
	return aggregate.NewLiveAggregator(cfg)
}

// DefaultAggregationConfig returns 30 s windows with slopes and the
// inter-generation-time metric.
func DefaultAggregationConfig() AggregationConfig { return aggregate.DefaultConfig() }

// SplitMode selects how rows are assigned to the train/validation
// sides (Config.SplitMode).
type SplitMode = aggregate.SplitMode

// The split modes: by whole run (the paper's setup; keeps a run's rows
// together) or by row (finer-grained; guarantees both sides stay
// populated under small sliding windows).
const (
	SplitByRun = aggregate.SplitByRun
	SplitByRow = aggregate.SplitByRow
)

// Feature selection (paper §III-C).
type (
	// PathPoint is the outcome of Lasso regularization at one λ.
	PathPoint = featsel.PathPoint
	// FeatureWeight is one surviving feature weight.
	FeatureWeight = featsel.Weight
)

// LassoPath computes the regularization path over a λ grid.
func LassoPath(ds *Dataset, lambdas []float64) ([]PathPoint, error) {
	return featsel.Path(ds, lambdas)
}

// LambdaGrid returns powers of ten 10^loExp..10^hiExp (the paper's λ̄).
func LambdaGrid(loExp, hiExp int) []float64 { return featsel.LambdaGrid(loExp, hiExp) }

// Models and pipeline (paper §III-D).
type (
	// Regressor is a trainable RTTF model.
	Regressor = ml.Regressor
	// ModelSpec names a method and constructs fresh instances.
	ModelSpec = core.ModelSpec
	// Config assembles the pipeline.
	Config = core.Config
	// Pipeline is a configured F2PM instance.
	Pipeline = core.Pipeline
	// Report is the pipeline output with all trained models and metrics.
	Report = core.Report
	// ModelResult is one trained-and-validated model.
	ModelResult = core.ModelResult
	// FeatureSet distinguishes all-parameter and Lasso-selected training.
	FeatureSet = core.FeatureSet
	// Metrics bundles MAE, RAE, MaxAE, S-MAE and timings for one model.
	Metrics = metrics.Report
	// UpdateInfo describes what the last Pipeline.Update did to one
	// model (incremental extension vs refit, standardizer drift,
	// evicted-row count).
	UpdateInfo = ml.UpdateInfo
	// WindowPolicy bounds the history a long-lived pipeline retains
	// (Config.Window): Update evicts the oldest runs so continuous
	// retraining runs at flat memory.
	WindowPolicy = core.WindowPolicy
)

// The two training-set families of the paper's Tables II-IV.
const (
	AllParams   = core.AllParams
	LassoParams = core.LassoParams
)

// DefaultConfig mirrors the paper's experimental setup.
func DefaultConfig() Config { return core.DefaultConfig() }

// DefaultModels returns the paper's six methods (the Lasso predictor
// once per λ in lassoLambdas).
func DefaultModels(lassoLambdas []float64) []ModelSpec { return core.DefaultModels(lassoLambdas) }

// NewPipeline validates cfg and returns a runnable pipeline.
func NewPipeline(cfg Config) (*Pipeline, error) { return core.New(cfg) }

// Evaluation metrics (paper §III-D).

// MAE is the mean absolute prediction error (eq. 5).
func MAE(predicted, observed []float64) (float64, error) { return metrics.MAE(predicted, observed) }

// RAE is the relative absolute prediction error (eq. 6).
func RAE(predicted, observed []float64) (float64, error) { return metrics.RAE(predicted, observed) }

// MaxAE is the maximum absolute prediction error.
func MaxAE(predicted, observed []float64) (float64, error) {
	return metrics.MaxAE(predicted, observed)
}

// SoftMAE is the soft mean absolute error: errors below threshold count
// as zero.
func SoftMAE(predicted, observed []float64, threshold float64) (float64, error) {
	return metrics.SoftMAE(predicted, observed, threshold)
}

// Response-time estimation (paper §III-B): the datapoint
// inter-generation time measured by the monitor correlates with the
// client-observed response time, giving an RT estimate with no
// client instrumentation.
type RTEstimator = rtest.Estimator

// FitRTEstimator builds the estimator from paired windowed series of
// inter-generation times and response times.
func FitRTEstimator(genTimes, rts []float64) (*RTEstimator, error) {
	return rtest.Fit(genTimes, rts)
}

// RTWindowPairs buckets raw observations into paired windows for
// FitRTEstimator.
func RTWindowPairs(sampleTimes, gaps, rtTimes, rts []float64, windowSec float64) (genSeries, rtSeries []float64, err error) {
	return rtest.WindowPairs(sampleTimes, gaps, rtTimes, rts, windowSec)
}
