// Benchmarks regenerating every table and figure of the paper's
// evaluation (§IV). Each benchmark produces the same rows/series the
// paper reports (see internal/experiments and EXPERIMENTS.md); the
// simulated campaign is generated once and cached, so iterations measure
// the regeneration work itself.
//
// Run with:
//
//	go test -bench=. -benchmem
package f2pm_test

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
)

var (
	benchOnce sync.Once
	benchArt  *experiments.Artifacts
	benchErr  error
)

// benchArtifacts returns the shared full-scale campaign, generated once
// and cached across all benchmarks so setup does not dominate the run.
func benchArtifacts(b *testing.B) *experiments.Artifacts {
	b.Helper()
	benchOnce.Do(func() {
		benchArt, benchErr = experiments.Build(experiments.DefaultConfig())
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchArt
}

// BenchmarkDataCampaign measures the simulated test-bed itself: one
// paper-scale campaign (100k virtual seconds of TPC-W with anomaly
// injection and 1.5 s feature sampling).
func BenchmarkDataCampaign(b *testing.B) {
	cfg := experiments.DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i) + 1
		if _, err := experiments.GenerateData(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3ResponseTimeCorrelation regenerates Figure 3: the
// response-time / inter-generation-time correlation on the longest run.
func BenchmarkFig3ResponseTimeCorrelation(b *testing.B) {
	art := benchArtifacts(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f3, err := experiments.Fig3(art.Data, art.Config.WindowSec)
		if err != nil {
			b.Fatal(err)
		}
		if f3.Pearson < 0.5 {
			b.Fatalf("correlation collapsed: %v", f3.Pearson)
		}
	}
}

// BenchmarkFig4LassoPath regenerates Figure 4: the Lasso regularization
// path over λ = 10⁰..10⁹ on the full dataset.
func BenchmarkFig4LassoPath(b *testing.B) {
	art := benchArtifacts(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f4, err := experiments.Fig4(art.Dataset)
		if err != nil {
			b.Fatal(err)
		}
		if f4.Counts()[0] == 0 {
			b.Fatal("empty path")
		}
	}
}

// BenchmarkTableILassoWeights regenerates Table I: the surviving feature
// weights at the selection λ.
func BenchmarkTableILassoWeights(b *testing.B) {
	art := benchArtifacts(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t1, err := experiments.TableI(art.Dataset, art.Config.SelectionLambda)
		if err != nil {
			b.Fatal(err)
		}
		if t1.Point.NumSelected() == 0 {
			b.Fatal("empty selection")
		}
	}
}

// BenchmarkTableIISoftMAE regenerates Table II by running the full
// pipeline — aggregation, selection, training all models on both feature
// families, validation — and extracting the S-MAE rows. This is the
// heavyweight benchmark: it is the paper's whole model-generation phase.
func BenchmarkTableIISoftMAE(b *testing.B) {
	art := benchArtifacts(b)
	pipeCfg := core.DefaultConfig()
	pipeCfg.Aggregation.WindowSec = art.Config.WindowSec
	pipeCfg.SelectionLambda = art.Config.SelectionLambda
	pipeCfg.SMAEFraction = art.Config.SMAEFraction
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pipe, err := core.New(pipeCfg)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := pipe.Run(&art.Data.History)
		if err != nil {
			b.Fatal(err)
		}
		tabs := experiments.Tables(rep)
		if len(tabs.SMAE) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkTableIIITrainingTime regenerates Table III (training time per
// model and feature family) from the shared pipeline report.
func BenchmarkTableIIITrainingTime(b *testing.B) {
	art := benchArtifacts(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tabs := experiments.Tables(art.Report)
		if len(tabs.TrainingTime) == 0 {
			b.Fatal("no rows")
		}
		_ = tabs.FormatTrainingTime()
	}
}

// BenchmarkTableIVValidationTime regenerates Table IV (validation time
// per model and feature family).
func BenchmarkTableIVValidationTime(b *testing.B) {
	art := benchArtifacts(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tabs := experiments.Tables(art.Report)
		if len(tabs.ValidationOne) == 0 {
			b.Fatal("no rows")
		}
		_ = tabs.FormatValidationTime()
	}
}

// BenchmarkFig5FittedModels regenerates Figure 5: the predicted-vs-real
// RTTF series for every all-parameters model.
func BenchmarkFig5FittedModels(b *testing.B) {
	art := benchArtifacts(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f5, err := experiments.Fig5(art.Report, art.Config.SelectionLambda)
		if err != nil {
			b.Fatal(err)
		}
		if len(f5.Panels) < 4 {
			b.Fatalf("only %d panels", len(f5.Panels))
		}
		_ = f5.Format()
	}
}

var (
	quickBenchOnce sync.Once
	quickBenchArt  *experiments.Artifacts
	quickBenchErr  error
)

// quickBenchArtifacts returns the reduced campaign for the (pipeline-
// heavy) ablation benchmarks, generated once and cached.
func quickBenchArtifacts(b *testing.B) *experiments.Artifacts {
	b.Helper()
	quickBenchOnce.Do(func() {
		quickBenchArt, quickBenchErr = experiments.Build(experiments.QuickConfig())
	})
	if quickBenchErr != nil {
		b.Fatal(quickBenchErr)
	}
	return quickBenchArt
}

// BenchmarkAblationWindowSize sweeps the aggregation window (DESIGN A1).
func BenchmarkAblationWindowSize(b *testing.B) {
	art := quickBenchArtifacts(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.AblationWindow(art.Config, &art.Data.History, []float64{15, 30, 60})
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != 3 {
			b.Fatal("sweep incomplete")
		}
	}
}

// BenchmarkAblationSlopes toggles the derived slope metrics (DESIGN A2).
func BenchmarkAblationSlopes(b *testing.B) {
	art := quickBenchArtifacts(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.AblationSlopes(art.Config, &art.Data.History)
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) == 0 {
			b.Fatal("no comparisons")
		}
	}
}

// BenchmarkAblationSMAEThreshold sweeps the S-MAE tolerance (DESIGN A3).
func BenchmarkAblationSMAEThreshold(b *testing.B) {
	art := quickBenchArtifacts(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.AblationThreshold(art.Report, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != 4 {
			b.Fatal("sweep incomplete")
		}
	}
}

// BenchmarkAblationTrainingRuns sweeps the training-set size (DESIGN A4).
func BenchmarkAblationTrainingRuns(b *testing.B) {
	art := quickBenchArtifacts(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.AblationRuns(art.Config, &art.Data.History, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != 4 {
			b.Fatal("sweep incomplete")
		}
	}
}

// BenchmarkAblationSamplingInterval re-simulates the campaign at
// different FMC sampling intervals and retrains (DESIGN A5) — the only
// ablation that regenerates the data itself.
func BenchmarkAblationSamplingInterval(b *testing.B) {
	art := quickBenchArtifacts(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.AblationInterval(art.Config, []float64{1.5, 6})
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != 2 {
			b.Fatal("sweep incomplete")
		}
	}
}
